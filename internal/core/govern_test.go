package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"netarch/internal/sat"
)

// unsatScenario is the canonical infeasible query over miniKB: the
// pfc_no_flooding rule forbids the two context pins together.
func unsatScenario() Scenario {
	return Scenario{Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true}}
}

func TestDeadlineReturnsResourceExhausted(t *testing.T) {
	// Acceptance: an expired context must surface as *ErrResourceExhausted
	// within ~2x the deadline. The scenario itself solves in microseconds,
	// so a fault hook parks the first solve until the deadline has fired —
	// the watchdog interrupt must then stop the query promptly.
	const deadline = 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	e := mustEngine(t, miniKB())
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			// Hold the solver until the deadline fires, then force the
			// interrupt at this boundary: deterministic, where racing the
			// watchdog goroutine's own Interrupt would not be. The
			// watchdog path itself is covered by the canceled-context
			// test (synchronous) and the sat-layer deadline test.
			<-ctx.Done()
			return true
		}
		return false
	})
	start := time.Now()
	rep, err := e.SynthesizeCtx(ctx, Scenario{}, Budget{})
	elapsed := time.Since(start)
	if rep != nil || err == nil {
		t.Fatalf("expired deadline must fail: rep=%v err=%v", rep, err)
	}
	var re *ErrResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *ErrResourceExhausted: %v", err, err)
	}
	if re.Query != "synthesize" || re.Cause != "deadline" {
		t.Errorf("exhaustion = query %q cause %q, want synthesize/deadline", re.Query, re.Cause)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, context.DeadlineExceeded) must hold")
	}
	if !IsResourceExhausted(err) {
		t.Error("IsResourceExhausted must hold")
	}
	if elapsed >= 2*deadline {
		t.Errorf("query took %s against a %s deadline (want < 2x)", elapsed, deadline)
	}
}

func TestBudgetTimeoutMapsToDeadline(t *testing.T) {
	// Budget.Timeout (no deadline on the caller's context) must behave
	// exactly like a context deadline, including errors.Is.
	const timeout = 50 * time.Millisecond
	e := mustEngine(t, miniKB())
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			time.Sleep(4 * timeout) // outlive the budget's deadline
		}
		return false
	})
	_, err := e.SynthesizeCtx(context.Background(), Scenario{}, Budget{Timeout: timeout})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) || re.Cause != "deadline" {
		t.Fatalf("got %v, want deadline exhaustion", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, context.DeadlineExceeded) must hold")
	}
}

func TestCanceledContextRefusesToStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := mustEngine(t, miniKB())
	_, err := e.SynthesizeCtx(ctx, Scenario{}, Budget{})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) || re.Cause != "canceled" {
		t.Fatalf("got %v, want canceled exhaustion", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) must hold")
	}
	// The refusal is synchronous, so no solver work may be spent.
	if re.Spent.Conflicts != 0 {
		t.Errorf("refused query spent %d conflicts, want 0", re.Spent.Conflicts)
	}
}

func TestOneConflictBudgetYieldsApproximateExplanation(t *testing.T) {
	// Acceptance: an UNSAT scenario under a 1-conflict budget must return
	// a report with Explanation.Approximate — a degraded answer, not a
	// hang and not a bare error. The main decision reaches Unsat at its
	// first conflict (verdicts at a boundary win over the budget), and
	// the minimization phase then trips its own 1-conflict allowance.
	e := mustEngine(t, miniKB())
	rep, err := e.SynthesizeCtx(context.Background(), unsatScenario(), Budget{MaxConflicts: 1})
	if err != nil {
		t.Fatalf("degraded query must not error: %v", err)
	}
	if rep.Verdict != Infeasible {
		t.Fatalf("verdict = %v, want Infeasible", rep.Verdict)
	}
	ex := rep.Explanation
	if ex == nil || !ex.Approximate {
		t.Fatalf("explanation must be approximate: %+v", ex)
	}
	if ex.ApproxCause != "conflict budget" {
		t.Errorf("ApproxCause = %q, want %q", ex.ApproxCause, "conflict budget")
	}
	if len(ex.Conflicts) == 0 {
		t.Error("approximate explanation must still name a conflict set")
	}
	if !strings.Contains(ex.String(), "approximate") {
		t.Errorf("rendering must flag approximation:\n%s", ex.String())
	}
	// The unminimized set must still contain the real culprit.
	found := false
	for _, c := range ex.Conflicts {
		if c.Name == "rule:pfc_no_flooding" {
			found = true
		}
	}
	if !found {
		t.Errorf("approximate set lost the conflicting rule: %v", ex.Conflicts)
	}
}

func TestInterruptMidMinimizationDegradesNotHangs(t *testing.T) {
	// Satellite: an interrupt landing during minimizeCore must produce an
	// approximate explanation, never a hang or a lost verdict. The hook
	// lets the main decision (solve #1) finish and interrupts the first
	// minimization trial (solve #2).
	e := mustEngine(t, miniKB())
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
			return solves >= 2
		}
		return false
	})
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = e.SynthesizeCtx(context.Background(), unsatScenario(), Budget{})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("interrupted minimization hung")
	}
	if err != nil {
		t.Fatalf("degraded query must not error: %v", err)
	}
	if rep.Verdict != Infeasible || rep.Explanation == nil {
		t.Fatalf("verdict lost: %+v", rep)
	}
	if !rep.Explanation.Approximate || rep.Explanation.ApproxCause != "interrupt" {
		t.Fatalf("want approximate/interrupt, got %+v", rep.Explanation)
	}
	if len(rep.Explanation.Conflicts) == 0 {
		t.Error("approximate explanation must keep the unminimized conflict")
	}
	if solves != 2 {
		t.Errorf("minimization kept solving after the interrupt: %d solves", solves)
	}
}

func TestReportBudgetAccounting(t *testing.T) {
	// Satellite: Report.Spent must be populated on the Sat, Unsat, and
	// exhausted paths alike, and the legacy mirror fields must agree.
	e := mustEngine(t, miniKB())

	sat1, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if sat1.Verdict != Feasible {
		t.Fatal("scenario must be feasible")
	}
	if sat1.Spent.Wall <= 0 || sat1.Spent.Decisions <= 0 {
		t.Errorf("feasible path spent not accounted: %+v", sat1.Spent)
	}
	if sat1.SolverConflicts != sat1.Spent.Conflicts || sat1.SolverDecisions != sat1.Spent.Decisions {
		t.Errorf("legacy stats diverge from Spent: %+v", sat1)
	}

	unsat, err := e.Synthesize(unsatScenario())
	if err != nil {
		t.Fatal(err)
	}
	if unsat.Verdict != Infeasible {
		t.Fatal("scenario must be infeasible")
	}
	if unsat.Spent.Wall <= 0 {
		t.Errorf("infeasible path spent not accounted: %+v", unsat.Spent)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.SynthesizeCtx(ctx, Scenario{}, Budget{})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want exhaustion", err)
	}
	if re.Spent.Wall <= 0 {
		t.Errorf("exhausted path spent not accounted: %+v", re.Spent)
	}
	if s := re.Spent.String(); !strings.Contains(s, "conflicts") || !strings.Contains(s, "wall") {
		t.Errorf("BudgetSpent rendering wrong: %q", s)
	}
}

func TestEnumerateComplete(t *testing.T) {
	e := mustEngine(t, miniKB())
	res, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.Exhausted != nil || res.Reason != "" {
		t.Fatalf("complete enumeration mislabeled: %+v", res)
	}
	if len(res.Designs) == 0 {
		t.Fatal("no designs enumerated")
	}
	if res.Spent.Wall <= 0 {
		t.Errorf("enumeration spent not accounted: %+v", res.Spent)
	}
}

func TestEnumerateLimitTruncation(t *testing.T) {
	e := mustEngine(t, miniKB())
	res, err := e.EnumerateCtx(context.Background(), Scenario{}, 1, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Reason != "limit" || res.Exhausted != nil {
		t.Fatalf("limit truncation mislabeled: %+v", res)
	}
	if len(res.Designs) != 1 {
		t.Fatalf("got %d designs, want 1", len(res.Designs))
	}
}

func TestEnumerateBudgetTruncation(t *testing.T) {
	// The hook lets the first class be discovered and interrupts the
	// second solve (the next discovery): the partial result must come
	// back labeled, never silently. One worker so the shared solve
	// counter is deterministic.
	e := mustEngine(t, miniKB())
	e.SetWorkers(1)
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
			return solves >= 2
		}
		return false
	})
	res, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Exhausted == nil {
		t.Fatalf("budget truncation mislabeled: %+v", res)
	}
	if res.Reason != res.Exhausted.Cause || res.Reason != "interrupt" {
		t.Errorf("reason %q / cause %q, want interrupt", res.Reason, res.Exhausted.Cause)
	}
	if len(res.Designs) != 1 {
		t.Fatalf("got %d partial designs, want the 1 found before the trip", len(res.Designs))
	}
}

func TestEnumerateLegacyPropagatesExhaustion(t *testing.T) {
	// Satellite: the legacy Enumerate must not silently return partial
	// results — the typed error rides along with the designs found.
	e := mustEngine(t, miniKB())
	e.SetWorkers(1)
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
			return solves >= 2
		}
		return false
	})
	designs, err := e.Enumerate(Scenario{}, 100)
	if err == nil {
		t.Fatal("mid-enumeration give-up must surface an error")
	}
	if !IsResourceExhausted(err) {
		t.Fatalf("error %v is not a resource exhaustion", err)
	}
	if len(designs) != 1 {
		t.Fatalf("partial designs must still be returned: got %d", len(designs))
	}
}

func TestOptimizeDegradesToApproximate(t *testing.T) {
	// A budget trip mid-optimization keeps the best witness seen instead
	// of discarding the query, and the [LowerBound, Value] bracket is
	// monotone in the budget: shrinking the solve allowance can only
	// weaken the proven lower bound and worsen the witnessed value.
	type bracket struct{ lb, val int64 }
	run := func(t *testing.T, allow int) (*OptimizeResult, bracket) {
		t.Helper()
		e := mustEngine(t, miniKB())
		solves := 0
		e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
			if ev == sat.EventSolve {
				solves++
				return solves > allow
			}
			return false
		})
		res, err := e.OptimizeCtx(context.Background(), Scenario{},
			[]Objective{{Kind: MinimizeCost}}, Budget{})
		if err != nil {
			t.Fatalf("degraded optimize must not error: %v", err)
		}
		if res.Verdict != Feasible || res.Design == nil {
			t.Fatalf("witness lost: %+v", res)
		}
		if len(res.ObjectiveValues) != len(res.LowerBounds) {
			t.Fatalf("bracket lists diverge: values=%v lbs=%v", res.ObjectiveValues, res.LowerBounds)
		}
		if len(res.ObjectiveValues) == 0 {
			return res, bracket{lb: -1, val: -1}
		}
		return res, bracket{lb: res.LowerBounds[0], val: res.ObjectiveValues[0]}
	}

	// Tightest budget: feasibility passes, the objective search trips on
	// its very first solve — the classic degradation. The level never
	// produced a value, so the bracket lists are empty (the documented
	// "levels the budget never reached" tail) but the witness survives.
	res, b := run(t, 1)
	if !res.Approximate || res.ApproxCause != "interrupt" {
		t.Fatalf("want approximate/interrupt, got approx=%v cause=%q", res.Approximate, res.ApproxCause)
	}
	if b.val != -1 {
		t.Fatalf("one allowed solve cannot certify a value, got %+v", res.ObjectiveValues)
	}

	// Shrinking budgets: the bracket must stay valid and only widen.
	prev := bracket{lb: -1, val: -1}
	for i, allow := range []int{24, 8, 4, 3, 2} {
		res, b := run(t, allow)
		if b.lb > b.val {
			t.Fatalf("allow=%d: inverted bracket [%d, %d]", allow, b.lb, b.val)
		}
		if !res.Approximate && b.lb != b.val {
			t.Fatalf("allow=%d: certified result must have a tight bracket, got [%d, %d]",
				allow, b.lb, b.val)
		}
		if i > 0 {
			if b.lb > prev.lb {
				t.Errorf("allow=%d: lower bound improved under a smaller budget: %d > %d",
					allow, b.lb, prev.lb)
			}
			if b.val < prev.val {
				t.Errorf("allow=%d: witness improved under a smaller budget: %d < %d",
					allow, b.val, prev.val)
			}
		}
		prev = b
	}
}

func TestOptimizeBinarySearchExhaustion(t *testing.T) {
	// Trip the budget INSIDE the binary-search descent (after feasibility
	// and the search's initial model, mid-bisection): the query must
	// degrade to the bounded-suboptimality contract, not error.
	e := mustEngine(t, miniKB())
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
			return solves > 4 // feasibility + initial model + two bisection probes
		}
		return false
	})
	res, err := e.OptimizeWithStrategyCtx(context.Background(), Scenario{},
		[]Objective{{Kind: MinimizeCost}}, Budget{}, StrategyBinary)
	if err != nil {
		t.Fatalf("mid-bisection trip must degrade, not error: %v", err)
	}
	if res.Verdict != Feasible || res.Design == nil {
		t.Fatalf("witness lost: %+v", res)
	}
	if !res.Approximate || res.ApproxCause != "interrupt" {
		t.Fatalf("want approximate/interrupt, got approx=%v cause=%q", res.Approximate, res.ApproxCause)
	}
	if res.LowerBounds[0] > res.ObjectiveValues[0] {
		t.Fatalf("inverted bracket [%d, %d]", res.LowerBounds[0], res.ObjectiveValues[0])
	}
	// The witness must be a real design for the scenario even though the
	// optimum was never certified. (Disarm the hook first: the check is a
	// fresh query, not part of the budgeted one.)
	e.SetFaultHook(nil)
	chk, err := e.Check(*res.Design, Scenario{})
	if err != nil || chk.Verdict != Feasible {
		t.Fatalf("degraded witness fails Check: %v %+v", err, chk)
	}
}

func TestOptimizeExhaustedBeforeVerdict(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetFaultHook(func(sat.FaultEvent, sat.Stats) bool { return true })
	_, err := e.OptimizeCtx(context.Background(), Scenario{},
		[]Objective{{Kind: MinimizeCost}}, Budget{})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) || re.Query != "optimize" {
		t.Fatalf("got %v, want optimize exhaustion", err)
	}
}

func TestSuggestExhaustion(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetFaultHook(func(sat.FaultEvent, sat.Stats) bool { return true })
	_, err := e.SuggestCtx(context.Background(), unsatScenario(), 3, Budget{})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) || re.Query != "suggest" {
		t.Fatalf("got %v, want suggest exhaustion", err)
	}
}

func TestDisambiguateIncomplete(t *testing.T) {
	// One worker so the shared solve counter is deterministic: each class
	// costs one solve (the discovery model is already canonical — see
	// enumerate.go), so tripping on the third solve yields exactly two
	// classes before the cut.
	e := mustEngine(t, miniKB())
	e.SetWorkers(1)
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
			return solves >= 3 // find two classes, trip on the third solve
		}
		return false
	})
	d, err := e.DisambiguateCtx(context.Background(), Scenario{}, 16, Budget{})
	if err != nil {
		t.Fatalf("cut-short disambiguation must not error: %v", err)
	}
	if !d.Incomplete {
		t.Fatalf("report must be marked incomplete: %+v", d)
	}
	if d.Classes != 2 {
		t.Errorf("got %d classes before the trip, want 2", d.Classes)
	}
	if !strings.Contains(d.String(), "cut short") {
		t.Errorf("rendering must mention the cut: %s", d.String())
	}
}

func TestIsResourceExhaustedWrapping(t *testing.T) {
	base := &ErrResourceExhausted{Query: "q", Cause: "deadline"}
	wrapped := fmt.Errorf("outer: %w", base)
	if !IsResourceExhausted(wrapped) {
		t.Error("wrapped exhaustion not detected")
	}
	if IsResourceExhausted(nil) || IsResourceExhausted(errors.New("plain")) {
		t.Error("false positive")
	}
	if !strings.Contains(base.Error(), "deadline") {
		t.Errorf("Error() = %q", base.Error())
	}
}

func TestGovernedQueriesMatchUngoverned(t *testing.T) {
	// Sanity: with a background context and zero budget, the *Ctx
	// variants must behave identically to the legacy entry points.
	e := mustEngine(t, miniKB())
	legacy, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := e.SynthesizeCtx(context.Background(), Scenario{}, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Verdict != ctxed.Verdict {
		t.Fatalf("verdicts diverge: %v vs %v", legacy.Verdict, ctxed.Verdict)
	}
	if fmt.Sprint(legacy.Design.Systems) != fmt.Sprint(ctxed.Design.Systems) {
		t.Errorf("designs diverge: %v vs %v", legacy.Design.Systems, ctxed.Design.Systems)
	}
}

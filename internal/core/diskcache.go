package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"netarch/internal/kb"
)

// The disk tier of the compiled-base cache: frozen bases are persisted as
// base-snapshot files (snapshot.go) named by the SHA-256 of their shape
// fingerprint, so the CLI and other short-lived processes skip the first
// compile+Simplify too. Lookup order is memory → disk → compile
// (cache.go:baseFor).
//
// Safety model: a cache file can change how fast an answer arrives, never
// what it is. Every file is CRC-, version-, KB-hash-, and fingerprint-
// checked on load. A structurally invalid file (bad CRC/magic/version,
// fingerprint alias) counts as DiskCorrupt and is quarantined — renamed
// with a ".bad" suffix, preserving the evidence without retrying it
// forever. A file that is merely stale (written from a different KB
// revision) counts as DiskStale and is left exactly where it is: it is
// not evidence of corruption, a process still on that revision can keep
// using it, and a live UpdateKB rewrites it in place. Either way the
// lookup falls through to a clean recompile. Writes go through a temp
// file + rename, so concurrent processes — or a crash mid-write — can
// never publish a torn file. Eviction is mtime-ordered and bounded by
// both file count and total bytes, counting quarantined ".bad" files
// against the same budget so repeated corruption cannot grow the
// directory without bound; loads re-touch their file so hot shapes
// survive.

const (
	// baseSnapshotExt is the extension of live cache files; quarantined
	// files get baseSnapshotExt + quarantineExt.
	baseSnapshotExt = ".nabase"
	quarantineExt   = ".bad"

	// DefaultDiskCacheFiles and DefaultDiskCacheBytes bound the disk tier
	// until SetDiskCacheLimit overrides them.
	DefaultDiskCacheFiles = 256
	DefaultDiskCacheBytes = 1 << 30

	// maxSnapshotFileSize rejects absurd files before reading them into
	// memory; no legitimate base snapshot gets anywhere near it.
	maxSnapshotFileSize = 1 << 30
)

// SetCacheDir enables the persistent cache tier in the given directory
// (created if missing) and fingerprints the current knowledge base to key
// the snapshots. An empty dir disables the tier. Returns any error from
// creating the directory. Safe to call concurrently with queries, but the
// KB must not be mutated during the call (mutate + InvalidateCache first).
func (e *Engine) SetCacheDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheDir = dir
	if dir != "" {
		e.kbHash = kbContentHash(e.kbCur)
	} else {
		e.kbHash = [32]byte{}
	}
	if e.diskMaxFiles == 0 {
		e.diskMaxFiles = DefaultDiskCacheFiles
	}
	if e.diskMaxBytes == 0 {
		e.diskMaxBytes = DefaultDiskCacheBytes
	}
	return nil
}

// SetDiskCacheLimit bounds the disk tier to at most maxFiles snapshot
// files and maxBytes total (whichever trips first); values <= 0 keep the
// current bound. Eviction runs after each write, oldest mtime first.
func (e *Engine) SetDiskCacheLimit(maxFiles int, maxBytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if maxFiles > 0 {
		e.diskMaxFiles = maxFiles
	}
	if maxBytes > 0 {
		e.diskMaxBytes = maxBytes
	}
}

// diskConfig snapshots the disk-tier configuration under the read lock.
// The KB pointer is captured in the same critical section as the KB hash,
// so restore-time derived-state recomputation always runs against the
// exact KB revision the hash vouches for, even mid-UpdateKB.
func (e *Engine) diskConfig() (dir string, hash [32]byte, k *kb.KB, maxFiles int, maxBytes int64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cacheDir, e.kbHash, e.kbCur, e.diskMaxFiles, e.diskMaxBytes
}

// snapshotPath is the cache file for a shape fingerprint. The name hashes
// the fingerprint: fingerprints contain user-controlled strings (workload
// names, SKU names) that must not reach the filesystem namespace.
func snapshotPath(dir, fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+baseSnapshotExt)
}

// loadDiskBase tries to revive the base for a shape from disk. It returns
// nil on any miss — no tier configured, no file, a stale file (counted,
// left in place), or a file that failed structural validation (counted,
// quarantined, never retried). The caller falls through to compileBase,
// so disk problems are invisible to queries.
// The fingerprint parameter is the full cache key (shape fingerprint
// plus slice-identity suffix); sl, when non-nil, is the slice the
// caller expects the file to have been compiled under.
func (e *Engine) loadDiskBase(shape *Scenario, fingerprint string, sl *kbSlice) *compiled {
	dir, hash, k, _, _ := e.diskConfig()
	if dir == "" {
		return nil
	}
	path := snapshotPath(dir, fingerprint)
	info, err := os.Stat(path)
	if err != nil {
		e.diskMisses.Add(1)
		return nil
	}
	if info.Size() > maxSnapshotFileSize {
		e.diskCorrupt.Add(1)
		e.quarantine(path)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		e.diskMisses.Add(1)
		return nil
	}
	base, err := restoreBaseSlice(k, shape, hash, data, sl)
	if err != nil {
		if errors.Is(err, ErrSnapshotStale) {
			// Written from a different KB revision — not corruption.
			// Leave the file: the process on that revision may still be
			// using it, and an UpdateKB for this revision rewrites it.
			e.diskStale.Add(1)
			return nil
		}
		e.diskCorrupt.Add(1)
		e.quarantine(path)
		return nil
	}
	// Refresh the mtime so eviction treats revived shapes as hot.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return base
}

// writeDiskBase persists a freshly compiled base, then enforces the
// eviction bounds. Best-effort: failures are silent (the cache is an
// accelerator, not a store of record), but successful writes are counted
// and reported.
func (e *Engine) writeDiskBase(base *compiled, fingerprint string) bool {
	dir, hash, _, maxFiles, maxBytes := e.diskConfig()
	if dir == "" {
		return false
	}
	data := snapshotBase(base, hash)
	e.diskMu.Lock()
	defer e.diskMu.Unlock()
	tmp, err := os.CreateTemp(dir, "nabase-*.tmp")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return false
	}
	// rename is atomic within the directory: concurrent readers see the
	// old file or the new one, never a torn mix.
	if err := os.Rename(tmp.Name(), snapshotPath(dir, fingerprint)); err != nil {
		_ = os.Remove(tmp.Name())
		return false
	}
	e.diskWrites.Add(1)
	e.evictDisk(dir, maxFiles, maxBytes)
	return true
}

// FlushDiskCache writes a snapshot file for every in-memory base that
// does not already have one on disk, and returns how many it wrote.
// Normal operation writes snapshots synchronously at compile time, so
// this is usually a no-op; it matters when the cache directory was
// configured (or the disk tier recovered) after bases were compiled, and
// it gives a draining server a cheap "everything warm is persisted"
// guarantee before exit. Bases carrying a warm-start profile are always
// rewritten: the compile-time snapshot predates the profile (profiles
// are recorded after solves), so flushing is what puts the latest
// profile on disk. No-op without a cache directory.
func (e *Engine) FlushDiskCache() int {
	dir, _, _, _, _ := e.diskConfig()
	if dir == "" {
		return 0
	}
	type entry struct {
		key  string
		base *compiled
	}
	e.mu.RLock()
	entries := make([]entry, 0, len(e.bases))
	for key, base := range e.bases {
		entries = append(entries, entry{key, base})
	}
	e.mu.RUnlock()
	written := 0
	for _, ent := range entries {
		if _, err := os.Stat(snapshotPath(dir, ent.key)); err == nil && ent.base.warm.p.Load() == nil {
			continue
		}
		if e.writeDiskBase(ent.base, ent.key) {
			written++
		}
	}
	return written
}

// quarantine renames a rejected cache file out of the lookup namespace so
// it is never re-parsed but stays on disk for diagnosis.
func (e *Engine) quarantine(path string) {
	_ = os.Rename(path, path+quarantineExt)
}

// evictDisk removes the oldest cache files until the directory is within
// both bounds. Quarantined ".bad" files count against the same budget and
// age out through the same mtime order — excluding them (as the scan once
// did, via filepath.Ext matching only ".bad" on quarantined names) let
// repeated corruption grow the directory without bound, since quarantine
// renames a file instead of deleting it. Caller holds diskMu.
func (e *Engine) evictDisk(dir string, maxFiles int, maxBytes int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var totalBytes int64
	for _, ent := range entries {
		name := ent.Name()
		live := filepath.Ext(name) == baseSnapshotExt
		quarantined := strings.HasSuffix(name, baseSnapshotExt+quarantineExt)
		if ent.IsDir() || (!live && !quarantined) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{filepath.Join(dir, name), info.Size(), info.ModTime()})
		totalBytes += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for i := 0; i < len(files) && (len(files)-i > maxFiles || totalBytes > maxBytes); i++ {
		if os.Remove(files[i].path) == nil {
			e.diskEvictions.Add(1)
		}
		totalBytes -= files[i].size
	}
}

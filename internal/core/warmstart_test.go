package core

import (
	"reflect"
	"testing"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// TestSnapshotWarmProfileRoundTrip pins the v3 warm section of the
// snapshot envelope: a profile stored on a base survives encode/decode
// bit-for-bit, and a base with no profile round-trips to no profile.
func TestSnapshotWarmProfileRoundTrip(t *testing.T) {
	k := miniKB()
	e := mustEngine(t, k)
	hash := kbContentHash(k)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	shape := baseShape(&sc)
	base, err := e.compileBase(&shape)
	if err != nil {
		t.Fatal(err)
	}

	// Bare base: no warm section payload, decodes to a nil profile.
	bare, err := restoreBase(k, &shape, hash, snapshotBase(base, hash))
	if err != nil {
		t.Fatal(err)
	}
	if bare.warm.p.Load() != nil {
		t.Fatal("profile materialized out of a profile-less snapshot")
	}

	n := base.solver.NumVars()
	prof := &sat.WarmProfile{
		Phases:   make([]bool, n),
		Activity: make([]uint16, n),
	}
	for i := 0; i < n; i++ {
		prof.Phases[i] = i%3 == 0
		prof.Activity[i] = uint16(i * 7919)
	}
	base.warm.p.Store(prof)

	restored, err := restoreBase(k, &shape, hash, snapshotBase(base, hash))
	if err != nil {
		t.Fatal(err)
	}
	got := restored.warm.p.Load()
	if got == nil {
		t.Fatal("warm profile lost in the snapshot round trip")
	}
	if !reflect.DeepEqual(got, prof) {
		t.Fatalf("profile round trip diverged:\ngot  %+v\nwant %+v", got, prof)
	}

	// A profile wider than the restored base's variable space is a
	// corruption signal, not something to silently truncate at decode.
	base.warm.p.Store(&sat.WarmProfile{
		Phases:   make([]bool, n+5),
		Activity: make([]uint16, n+5),
	})
	if _, err := restoreBase(k, &shape, hash, snapshotBase(base, hash)); err == nil {
		t.Fatal("oversized warm profile decoded without error")
	}
}

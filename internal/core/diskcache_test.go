package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// mustDiskEngine builds an engine with the disk tier active in dir.
func mustDiskEngine(t *testing.T, k *kb.KB, dir string) *Engine {
	t.Helper()
	e := mustEngine(t, k)
	if err := e.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	return e
}

// cacheFiles lists the live snapshot files in dir.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+baseSnapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestDiskCacheDifferential is the golden round-trip gate: a fresh engine
// reviving every §5.1 base from disk must answer byte-identically to the
// in-process warm path AND to a cache-disabled engine — a cache file can
// change how fast an answer arrives, never what it is.
func TestDiskCacheDifferential(t *testing.T) {
	k, cases := caseStudyQueries()
	dir := t.TempDir()

	uncached := mustEngine(t, k)
	uncached.SetCacheCapacity(0)

	writer := mustDiskEngine(t, k, dir)
	for _, tc := range cases {
		runQuery(t, writer, tc.kind, tc.sc) // compiles + persists
	}
	if st := writer.CacheStats(); st.DiskWrites == 0 {
		t.Fatalf("priming engine wrote no snapshots: %+v", st)
	}

	reader := mustDiskEngine(t, k, dir)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runQuery(t, uncached, tc.kind, tc.sc)
			warm := runQuery(t, writer, tc.kind, tc.sc) // in-memory warm path
			disk := runQuery(t, reader, tc.kind, tc.sc) // disk-revived path
			if warm != want {
				t.Errorf("in-memory warm diverges from uncached:\nuncached:\n%s\nwarm:\n%s", want, warm)
			}
			if disk != want {
				t.Errorf("disk-revived diverges from uncached:\nuncached:\n%s\ndisk:\n%s", want, disk)
			}
		})
	}
	st := reader.CacheStats()
	if st.Misses != 0 {
		t.Errorf("disk-warm engine compiled %d bases; every shape should revive from disk: %+v", st.Misses, st)
	}
	if st.DiskHits == 0 || st.DiskCorrupt != 0 {
		t.Errorf("unexpected disk counters: %+v", st)
	}
}

// TestDiskWarmSkipsCompile is the acceptance assertion: with a primed
// cache dir, the first query of a fresh engine performs zero base
// compiles (Misses == 0) and exactly as many solver invocations as an
// in-memory warm query — i.e. revival skips compile+Simplify entirely,
// not just partially.
func TestDiskWarmSkipsCompile(t *testing.T) {
	dir := t.TempDir()
	sc := Scenario{Require: []kb.Property{"congestion_control"}}

	prime := mustDiskEngine(t, miniKB(), dir)
	if _, err := prime.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	// Count solver entries on the in-memory warm path for the reference.
	warmSolves := 0
	prime.SetFaultHook(func(e sat.FaultEvent, _ sat.Stats) bool {
		if e == sat.EventSolve {
			warmSolves++
		}
		return false
	})
	if _, err := prime.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	if warmSolves == 0 {
		t.Fatal("fault hook observed no solves on the warm path")
	}

	fresh := mustDiskEngine(t, miniKB(), dir)
	diskSolves := 0
	fresh.SetFaultHook(func(e sat.FaultEvent, _ sat.Stats) bool {
		if e == sat.EventSolve {
			diskSolves++
		}
		return false
	})
	if _, err := fresh.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	st := fresh.CacheStats()
	if st.Misses != 0 {
		t.Errorf("disk-warm first query compiled a base: %+v", st)
	}
	if st.DiskHits != 1 {
		t.Errorf("disk-warm first query should revive exactly one base: %+v", st)
	}
	if diskSolves != warmSolves {
		t.Errorf("disk-warm query ran %d solves, in-memory warm ran %d — revival must add no solver work",
			diskSolves, warmSolves)
	}
}

// corruptions is the version-skew/corruption matrix: each entry mutates a
// valid snapshot file and names the decode error class it must produce.
// The CRC trailer is recomputed for the mutations that target checks
// beyond it (version, KB hash), so each case exercises its own guard.
var corruptions = []struct {
	name    string
	mutate  func(data []byte) []byte
	wantErr error
}{
	{"truncated", func(d []byte) []byte { return d[:len(d)/2] }, ErrSnapshotCorrupt},
	{"bit-flip", func(d []byte) []byte {
		d[len(d)/2] ^= 0x40
		return d
	}, ErrSnapshotCorrupt},
	{"wrong-magic", func(d []byte) []byte {
		d[0] = 'X'
		return reseal(d)
	}, ErrSnapshotCorrupt},
	{"future-version", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:], baseSnapshotVersion+7)
		return reseal(d)
	}, ErrSnapshotVersion},
	{"stale-kb-hash", func(d []byte) []byte {
		d[12] ^= 0xff // first byte of the KB content hash
		return reseal(d)
	}, ErrSnapshotStale},
	{"empty", func(d []byte) []byte { return nil }, ErrSnapshotCorrupt},
}

// reseal recomputes the CRC trailer after a deliberate mutation, so the
// decode proceeds past the integrity check to the guard under test.
func reseal(d []byte) []byte {
	body := d[:len(d)-4]
	binary.LittleEndian.PutUint32(d[len(d)-4:], crc32.ChecksumIEEE(body))
	return d
}

// TestDiskCacheCorruptionMatrix drives each corruption through the full
// cache path: the query must still succeed (clean recompile, never an
// error), and each error class must follow its policy — structural
// corruption quarantines the file and counts DiskCorrupt, a stale KB hash
// leaves the file alone and counts DiskStale.
func TestDiskCacheCorruptionMatrix(t *testing.T) {
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			prime := mustDiskEngine(t, miniKB(), dir)
			if _, err := prime.Synthesize(sc); err != nil {
				t.Fatal(err)
			}
			files := cacheFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected one cache file, got %v", files)
			}
			path := files[0]
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// The mutated bytes must produce the advertised error class.
			shape := baseShape(&sc)
			mutated := tc.mutate(append([]byte(nil), data...))
			verify := mustDiskEngine(t, miniKB(), dir)
			if _, rerr := restoreBase(verify.KB(), &shape, verify.kbHash, mutated); !errors.Is(rerr, tc.wantErr) {
				t.Fatalf("restoreBase error = %v, want %v", rerr, tc.wantErr)
			}

			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			fresh := mustDiskEngine(t, miniKB(), dir)
			rep, err := fresh.Synthesize(sc)
			if err != nil {
				t.Fatalf("query over corrupt cache file must recompile, got error: %v", err)
			}
			if rep.Verdict != Feasible {
				t.Fatalf("verdict = %v, want Feasible", rep.Verdict)
			}
			st := fresh.CacheStats()
			stale := errors.Is(tc.wantErr, ErrSnapshotStale)
			if stale {
				// Stale is a policy rejection, not corruption: counted
				// separately and the file stays put (no ".bad" rename).
				if st.DiskStale != 1 || st.DiskCorrupt != 0 || st.Misses != 1 || st.DiskHits != 0 {
					t.Errorf("counters after stale file: %+v (want 1 stale, 0 corrupt, 1 miss/compile)", st)
				}
				if _, err := os.Stat(path + quarantineExt); !errors.Is(err, os.ErrNotExist) {
					t.Errorf("stale file must not be quarantined (stat .bad: %v)", err)
				}
			} else {
				if st.DiskCorrupt != 1 || st.Misses != 1 || st.DiskHits != 0 {
					t.Errorf("counters after corrupt file: %+v (want 1 corrupt, 1 miss/compile, 0 disk hits)", st)
				}
				if _, err := os.Stat(path + quarantineExt); err != nil {
					t.Errorf("corrupt file not quarantined: %v", err)
				}
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				// The recompile re-persists under the same name; what must
				// be gone is the rejected content — quarantine moved it (or
				// the write replaced a stale file in place). Check the live
				// file now restores.
				live, rerr := os.ReadFile(path)
				if rerr != nil {
					t.Fatalf("reading rewritten cache file: %v", rerr)
				}
				if _, rerr := restoreBase(fresh.KB(), &shape, fresh.kbHash, live); rerr != nil {
					t.Errorf("rewritten cache file does not restore: %v", rerr)
				}
			}
		})
	}
}

// TestDiskCacheStaleKBEndToEnd mutates the knowledge base between
// processes: the snapshot written under the old KB must be rejected as
// stale by an engine over the new KB (same scenario, same file name),
// left un-quarantined, and then replaced in place by the recompile's
// write.
func TestDiskCacheStaleKBEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	prime := mustDiskEngine(t, miniKB(), dir)
	if _, err := prime.Synthesize(sc); err != nil {
		t.Fatal(err)
	}

	changed := miniKB()
	changed.Hardware[0].CostUSD += 100 // content change, same shape
	fresh := mustDiskEngine(t, changed, dir)
	if _, err := fresh.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	st := fresh.CacheStats()
	if st.DiskStale != 1 || st.DiskCorrupt != 0 || st.Misses != 1 {
		t.Errorf("stale-KB snapshot should count stale + recompile without quarantine: %+v", st)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected the stale snapshot to be rewritten in place, got %v", files)
	}
	shape := baseShape(&sc)
	live, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restoreBase(fresh.KB(), &shape, fresh.kbHash, live); err != nil {
		t.Errorf("rewritten snapshot does not restore under the new KB: %v", err)
	}
}

// TestDiskCacheFingerprintMismatch plants a valid snapshot under the
// wrong shape's file name (a hash collision stand-in): the embedded
// fingerprint disagrees, so it must be rejected, quarantined, and
// recompiled — on-disk aliasing would outlive the process.
func TestDiskCacheFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	scA := Scenario{Require: []kb.Property{"congestion_control"}}
	scB := Scenario{NumServers: 8, Require: []kb.Property{"congestion_control"}}
	prime := mustDiskEngine(t, miniKB(), dir)
	if _, err := prime.Synthesize(scA); err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one cache file, got %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	shapeB := baseShape(&scB)
	pathB := snapshotPath(dir, shapeB.fingerprint())
	if err := os.WriteFile(pathB, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rerr := restoreBase(prime.KB(), &shapeB, prime.kbHash, data); !errors.Is(rerr, ErrSnapshotMismatch) {
		t.Fatalf("restoreBase error = %v, want ErrSnapshotMismatch", rerr)
	}

	fresh := mustDiskEngine(t, miniKB(), dir)
	if _, err := fresh.Synthesize(scB); err != nil {
		t.Fatal(err)
	}
	st := fresh.CacheStats()
	if st.DiskCorrupt != 1 || st.Misses != 1 {
		t.Errorf("aliased snapshot should quarantine + recompile: %+v", st)
	}
	if _, err := os.Stat(pathB + quarantineExt); err != nil {
		t.Errorf("aliased file not quarantined: %v", err)
	}
}

// TestDiskCacheEviction exercises the mtime/count bound: with a limit of
// two files, persisting three shapes must leave two and count evictions.
func TestDiskCacheEviction(t *testing.T) {
	dir := t.TempDir()
	e := mustDiskEngine(t, miniKB(), dir)
	e.SetDiskCacheLimit(2, 0)
	for _, n := range []int{0, 8, 16} {
		if _, err := e.Synthesize(Scenario{NumServers: n}); err != nil {
			t.Fatal(err)
		}
	}
	if files := cacheFiles(t, dir); len(files) != 2 {
		t.Errorf("expected 2 files after eviction, got %d", len(files))
	}
	st := e.CacheStats()
	if st.DiskWrites != 3 || st.DiskEvictions != 1 {
		t.Errorf("expected 3 writes / 1 eviction: %+v", st)
	}
}

// TestDiskCacheDisabledByDefault: without SetCacheDir nothing touches the
// filesystem and every disk counter stays zero.
func TestDiskCacheDisabledByDefault(t *testing.T) {
	e := mustEngine(t, miniKB())
	if _, err := e.Synthesize(Scenario{}); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.DiskHits+st.DiskMisses+st.DiskWrites+st.DiskEvictions+st.DiskCorrupt+st.DiskStale != 0 {
		t.Errorf("disk counters moved without a cache dir: %+v", st)
	}
}

// TestCacheStatsStringDiskSection pins the -cache-stats rendering of the
// disk counters.
func TestCacheStatsStringDiskSection(t *testing.T) {
	cs := CacheStats{Size: 1, Capacity: 32, Hits: 2, Misses: 1, DiskHits: 3, DiskCorrupt: 1}
	s := cs.String()
	if !strings.Contains(s, "disk: 3 hits") || !strings.Contains(s, "1 corrupt") {
		t.Errorf("disk counters missing from %q", s)
	}
	quiet := CacheStats{Size: 1, Capacity: 32, Hits: 2, Misses: 1}
	if strings.Contains(quiet.String(), "disk:") {
		t.Errorf("disk section rendered with all-zero counters: %q", quiet.String())
	}
}

// FuzzDecodeBase hammers the envelope decoder with mutated base
// snapshots: typed errors only, no panics, no input-amplified
// allocations, and an accepted decode must yield a base whose solver
// answers a (budgeted) probe without faulting.
func FuzzDecodeBase(f *testing.F) {
	k := miniKB()
	e, err := New(k)
	if err != nil {
		f.Fatal(err)
	}
	hash := kbContentHash(k)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	shape := baseShape(&sc)
	base, err := e.compileBase(&shape)
	if err != nil {
		f.Fatal(err)
	}
	valid := snapshotBase(base, hash)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("NABASE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		c, err := restoreBase(k, &shape, hash, data)
		if err != nil {
			switch {
			case errors.Is(err, ErrSnapshotCorrupt),
				errors.Is(err, ErrSnapshotVersion),
				errors.Is(err, ErrSnapshotStale),
				errors.Is(err, ErrSnapshotMismatch):
			default:
				t.Fatalf("untyped error from restoreBase: %v", err)
			}
			return
		}
		c.solver.SetBudget(200, 2000)
		c.solver.SolveAssuming(c.assumptions())
	})
}

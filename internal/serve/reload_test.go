package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/kb"
)

func mustTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRetryAfterHeaderClamp is the regression test for the Retry-After
// truncation bug: a sub-second hint integer-divided to "Retry-After: 0",
// which compliant clients treat as "retry now" — the opposite of backing
// off. The header must round up and clamp to >= 1 second while the JSON
// body keeps the exact millisecond hint.
func TestRetryAfterHeaderClamp(t *testing.T) {
	cases := []struct {
		hint       time.Duration
		wantHeader string
		wantMS     int64
	}{
		{250 * time.Millisecond, "1", 250}, // the bug: used to emit "0"
		{time.Second, "1", 1000},
		{1500 * time.Millisecond, "2", 1500}, // round up, not down
		{3 * time.Second, "3", 3000},
	}
	for _, tc := range cases {
		s, err := New(Config{
			Engine:     mustTestEngine(t),
			RetryAfter: tc.hint,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		s.reject(rec, s.stats.mode("synth"), time.Now(), http.StatusTooManyRequests, "shed", "test")
		if got := rec.Header().Get("Retry-After"); got != tc.wantHeader {
			t.Errorf("hint %v: Retry-After header = %q, want %q", tc.hint, got, tc.wantHeader)
		}
		var eb ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("hint %v: bad body: %v", tc.hint, err)
		}
		if eb.Error.RetryAfterMS != tc.wantMS {
			t.Errorf("hint %v: RetryAfterMS = %d, want %d (body must stay exact)",
				tc.hint, eb.Error.RetryAfterMS, tc.wantMS)
		}
	}
}

// postKB ships a knowledge base to /v1/admin/reload and returns the
// status plus raw body.
func postKB(t *testing.T, base string, k *kb.KB) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/admin/reload", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestServeReload drives the live-update path end to end: a reload with
// an edited catalog revalidates the warm base in place, and the very next
// query answers against the new KB — no restart, no cold compile.
func TestServeReload(t *testing.T) {
	_, base := testServer(t, nil)

	// Before the reload, the canary atom is unconstrained: feasible.
	req := QueryRequest{Scenario: ScenarioJSON{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{"reload_canary": true},
	}}
	var qr QueryResponse
	if status, raw := post(t, base+"/v1/synth", req, &qr); status != http.StatusOK || qr.Verdict != "FEASIBLE" {
		t.Fatalf("pre-reload query: status %d\n%s", status, raw)
	}

	// Reload with a rule that forbids the canary.
	next := catalog.CaseStudy()
	next.Rules = append(next.Rules, kb.Rule{
		Name: "no_canary",
		Expr: kb.Implies(kb.CtxAtom("reload_canary"), kb.FalseExpr()),
		Note: "reload canary must be off",
	})
	var rr ReloadResponse
	status, raw := postKB(t, base, next)
	if status != http.StatusOK {
		t.Fatalf("reload: status %d\n%s", status, raw)
	}
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Changes == 0 || rr.BasesUpdated == 0 {
		t.Fatalf("reload did not revalidate the warm base: %+v", rr)
	}
	if rr.ShardsReused == 0 {
		t.Errorf("one-rule reload reconverted everything: %+v", rr)
	}

	// The same query is now infeasible: the new KB is live.
	if status, raw := post(t, base+"/v1/synth", req, &qr); status != http.StatusOK || qr.Verdict != "INFEASIBLE" {
		t.Fatalf("post-reload query: status %d verdict %q\n%s", status, qr.Verdict, raw)
	}

	// Malformed and invalid bodies are typed errors, not swaps.
	resp, err := http.Post(base+"/v1/admin/reload", "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
	invalid := catalog.CaseStudy()
	invalid.Systems = append(invalid.Systems, invalid.Systems[0]) // duplicate
	if status, _ := postKB(t, base, invalid); status != http.StatusUnprocessableEntity {
		t.Errorf("invalid KB: status %d, want 422", status)
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	if sz.Reloads != 1 || sz.ReloadErrors != 2 {
		t.Errorf("reload counters = %d ok / %d errors, want 1 / 2", sz.Reloads, sz.ReloadErrors)
	}
	checkStatsReconcile(t, &sz)
}

// TestServeReloadUnderLoad is the acceptance check for zero-downtime
// reloads: with queries hammering the server, repeated reloads must never
// shed, fail, or surface a non-200 on the query path.
func TestServeReloadUnderLoad(t *testing.T) {
	_, base := testServer(t, func(c *Config) {
		c.MaxInFlight = 4
		c.QueueDepth = 64 // absorb the hammer: this test is about reloads, not shedding
	})

	const queriers = 4
	stop := make(chan struct{})
	var failures atomic.Int64
	var queries atomic.Int64
	var wg sync.WaitGroup
	body, _ := json.Marshal(QueryRequest{Scenario: scInference})
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					t.Errorf("query transport error mid-reload: %v", err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				queries.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("query mid-reload: status %d\n%s", resp.StatusCode, raw)
					return
				}
			}
		}()
	}

	for i := 0; i < 3; i++ {
		next := catalog.CaseStudy()
		next.Rules = append(next.Rules, kb.Rule{
			Name: fmt.Sprintf("reload_rev_%d", i),
			Expr: kb.Implies(kb.CtxAtom(fmt.Sprintf("rev_%d", i)), kb.TrueExpr()),
			Note: "revision marker",
		})
		if status, raw := postKB(t, base, next); status != http.StatusOK {
			t.Errorf("reload %d: status %d\n%s", i, status, raw)
		}
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d of %d queries failed across reloads", failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("hammer issued no queries")
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	if sz.Reloads != 3 {
		t.Errorf("reloads = %d, want 3", sz.Reloads)
	}
	if m := sz.Modes["synth"]; m.Shed != 0 {
		t.Errorf("reloads shed %d queries; zero-downtime contract broken", m.Shed)
	}
	checkStatsReconcile(t, &sz)
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"netarch/internal/sat"
)

// Satellite coverage for POST /v1/optimize: the happy paths (both
// strategies, lexicographic and Pareto), request validation, and the
// fault-matrix rows the chaos harness demands of every mode — budget
// trip degrading to a 200 that still carries the proven lower_bounds
// bracket, panic isolation, and shedding under load.

func TestServeOptimizeHappyPath(t *testing.T) {
	_, base := testServer(t, nil)
	for _, strategy := range []string{"", "binary", "linear"} {
		var qr QueryResponse
		status, raw := post(t, base+"/v1/optimize", QueryRequest{
			Scenario:   scInference,
			Objectives: []string{"systems", "cost"},
			Strategy:   strategy,
		}, &qr)
		if status != http.StatusOK || qr.Verdict != "FEASIBLE" {
			t.Fatalf("strategy %q: status %d verdict %q\n%s", strategy, status, qr.Verdict, raw)
		}
		if qr.Degraded {
			t.Fatalf("strategy %q: unbudgeted optimize degraded: %s", strategy, raw)
		}
		if len(qr.ObjectiveValues) != 2 || len(qr.LowerBounds) != 2 {
			t.Fatalf("strategy %q: bracket missing: %s", strategy, raw)
		}
		for i := range qr.ObjectiveValues {
			if qr.LowerBounds[i] != qr.ObjectiveValues[i] {
				t.Fatalf("strategy %q: certified level %d has loose bracket [%d, %d]",
					strategy, i, qr.LowerBounds[i], qr.ObjectiveValues[i])
			}
		}
		if qr.Design == nil || len(qr.Design.Systems) == 0 {
			t.Fatalf("strategy %q: no witness design: %s", strategy, raw)
		}
	}
	// The two strategies must agree on the optimum (they only differ in
	// how they descend).
	var lin, bin QueryResponse
	post(t, base+"/v1/optimize", QueryRequest{
		Scenario: scInference, Objectives: []string{"cost"}, Strategy: "linear",
	}, &lin)
	post(t, base+"/v1/optimize", QueryRequest{
		Scenario: scInference, Objectives: []string{"cost"}, Strategy: "binary",
	}, &bin)
	if lin.ObjectiveValues[0] != bin.ObjectiveValues[0] {
		t.Fatalf("strategies disagree on the optimum: linear %d, binary %d",
			lin.ObjectiveValues[0], bin.ObjectiveValues[0])
	}
}

func TestServeOptimizePareto(t *testing.T) {
	_, base := testServer(t, nil)
	var qr QueryResponse
	status, raw := post(t, base+"/v1/optimize", QueryRequest{
		Scenario:   scInference,
		Objectives: []string{"cost", "power"},
		Pareto:     true,
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("status %d\n%s", status, raw)
	}
	if !qr.Complete || qr.Degraded {
		t.Fatalf("unbudgeted pareto must be complete: %s", raw)
	}
	if len(qr.ParetoPoints) == 0 {
		t.Fatalf("empty frontier on a feasible scenario: %s", raw)
	}
	for i, p := range qr.ParetoPoints {
		if len(p.Values) != 2 || p.Design == nil {
			t.Fatalf("point %d malformed: %s", i, raw)
		}
		// Sorted, mutually non-dominated frontier: strictly increasing in
		// the first objective, strictly decreasing in the second.
		if i > 0 {
			prev := qr.ParetoPoints[i-1]
			if p.Values[0] <= prev.Values[0] || p.Values[1] >= prev.Values[1] {
				t.Fatalf("frontier not sorted/non-dominated at %d: %v then %v",
					i, prev.Values, p.Values)
			}
		}
	}
}

func TestServeOptimizeValidation(t *testing.T) {
	_, base := testServer(t, nil)
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"no objectives", QueryRequest{Scenario: scInference}},
		{"unknown objective", QueryRequest{Scenario: scInference, Objectives: []string{"karma"}}},
		{"unknown strategy", QueryRequest{Scenario: scInference, Objectives: []string{"cost"}, Strategy: "quantum"}},
	}
	for _, tc := range cases {
		var eb ErrorBody
		status, raw := post(t, base+"/v1/optimize", tc.req, &eb)
		if status != http.StatusBadRequest || eb.Error.Kind != "bad_request" {
			t.Fatalf("%s: status %d kind %q, want 400 bad_request\n%s",
				tc.name, status, eb.Error.Kind, raw)
		}
	}
}

// TestServeOptimizeBudgetTripDegrades arms a deterministic fault hook
// that lets feasibility and the search's initial model through, then
// trips: the response must be a degraded 200 still carrying the witness
// and the proven [lower_bound, value] bracket — the wire form of the
// bounded-suboptimality contract.
func TestServeOptimizeBudgetTripDegrades(t *testing.T) {
	s, base := testServer(t, nil)
	var mu sync.Mutex
	solves := 0
	s.eng.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev != sat.EventSolve {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		solves++
		return solves > 2
	})
	var qr QueryResponse
	status, raw := post(t, base+"/v1/optimize", QueryRequest{
		Scenario:   scInference,
		Objectives: []string{"cost"},
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("mid-search trip must degrade to 200, got %d\n%s", status, raw)
	}
	if !qr.Degraded || qr.DegradedCause != "interrupt" {
		t.Fatalf("want degraded/interrupt, got degraded=%v cause=%q\n%s",
			qr.Degraded, qr.DegradedCause, raw)
	}
	if qr.Verdict != "FEASIBLE" || qr.Design == nil {
		t.Fatalf("degraded optimize lost the witness: %s", raw)
	}
	if len(qr.LowerBounds) != len(qr.ObjectiveValues) || len(qr.ObjectiveValues) == 0 {
		t.Fatalf("degraded optimize missing the bracket: %s", raw)
	}
	if qr.LowerBounds[0] > qr.ObjectiveValues[0] {
		t.Fatalf("inverted bracket [%d, %d]", qr.LowerBounds[0], qr.ObjectiveValues[0])
	}

	// Disarm; the next optimize must certify from a pristine clone. (A
	// fresh response struct: Unmarshal leaves omitted fields untouched.)
	s.eng.SetFaultHook(nil)
	qr = QueryResponse{}
	status, raw = post(t, base+"/v1/optimize", QueryRequest{
		Scenario:   scInference,
		Objectives: []string{"cost"},
	}, &qr)
	if status != http.StatusOK || qr.Degraded {
		t.Fatalf("post-disarm optimize: status %d degraded=%v\n%s", status, qr.Degraded, raw)
	}
	if qr.LowerBounds[0] != qr.ObjectiveValues[0] {
		t.Fatalf("post-disarm bracket loose: [%d, %d]", qr.LowerBounds[0], qr.ObjectiveValues[0])
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	checkStatsReconcile(t, &sz)
	if m := sz.Modes["optimize"]; m.Degraded == 0 {
		t.Fatalf("degraded optimize not counted: %+v", m)
	}
}

// TestServeOptimizePanicIsolation: a panic inside an optimize request is
// a 500 with a typed body, and the server keeps answering.
func TestServeOptimizePanicIsolation(t *testing.T) {
	s, base := testServer(t, nil)
	s.eng.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		panic("chaos: injected panic")
	})
	var eb ErrorBody
	status, raw := post(t, base+"/v1/optimize", QueryRequest{
		Scenario:   scInference,
		Objectives: []string{"cost"},
	}, &eb)
	if status != http.StatusInternalServerError || eb.Error.Kind != "internal" {
		t.Fatalf("status %d kind %q, want 500 internal\n%s", status, eb.Error.Kind, raw)
	}
	s.eng.SetFaultHook(nil)
	var qr QueryResponse
	status, raw = post(t, base+"/v1/optimize", QueryRequest{
		Scenario:   scInference,
		Objectives: []string{"cost"},
	}, &qr)
	if status != http.StatusOK || qr.Verdict != "FEASIBLE" {
		t.Fatalf("request after panic: status %d verdict %q\n%s", status, qr.Verdict, raw)
	}
}

// TestServeOptimizeShedsUnderLoad: with capacity 1+1 and the single
// in-flight slot parked on a gate, surplus optimize requests must shed
// with 429 + Retry-After, and every response stays well-formed.
func TestServeOptimizeShedsUnderLoad(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	parked := make(chan struct{}, 16)
	s, base := testServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.QueueDepth = 1
	})
	s.eng.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			select {
			case parked <- struct{}{}:
			default:
			}
			<-gate
		}
		return false
	})

	const clients = 4
	statuses := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(QueryRequest{
				Scenario:   scInference,
				Objectives: []string{"cost"},
			})
			resp, err := http.Post(base+"/v1/optimize", "application/json",
				bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				statuses <- -2
				return
			}
			statuses <- resp.StatusCode
		}()
	}
	// Wait until the first request is parked inside the solver; surplus
	// arrivals then overflow the depth-1 queue and shed immediately. Once
	// shedding is observed, release the gate so the admitted requests can
	// finish.
	<-parked
	shed := 0
	for got := 0; got < clients; got++ {
		switch st := <-statuses; st {
		case -1:
			t.Fatal("transport error during overload")
		case -2:
			t.Fatal("429 without Retry-After header")
		case http.StatusTooManyRequests:
			shed++
			gateOnce.Do(func() { close(gate) })
		case http.StatusOK:
		default:
			t.Fatalf("unexpected status %d under overload", st)
		}
	}
	gateOnce.Do(func() { close(gate) })
	wg.Wait()
	s.eng.SetFaultHook(nil)

	if shed == 0 {
		t.Fatal("no request shed at 4× capacity")
	}
	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	checkStatsReconcile(t, &sz)
	if m := sz.Modes["optimize"]; m.Shed == 0 {
		t.Fatalf("shed not counted for optimize: %+v", m)
	}
}

package serve

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"netarch/internal/sat"
)

// The chaos profile is the server's fault-injection surface: a seeded,
// rate-controlled hook wired into Engine.SetFaultHook at startup. Every
// solver the engine specializes carries the hook; when it fires, the
// solve is interrupted exactly as a budget trip or deadline would
// interrupt it, so chaos exercises the same degraded paths production
// overload does — typed resource_exhausted errors and degraded-but-
// witnessed responses, never malformed bodies or crashes. The solver
// clone a fault hits is discarded with its request (pool quarantine is
// structural, see core/pool.go), so one injected fault can never poison
// a later request.

// Chaos is a concurrency-safe fault-injection profile. The zero value
// (or a nil *Chaos) injects nothing.
type Chaos struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
	// events gates which sat.FaultEvent kinds are eligible; empty means
	// both solve-entry and conflict-boundary events.
	events map[sat.FaultEvent]bool

	fired int64 // faults injected so far (see Fired)
}

// NewChaos builds a profile injecting at the given per-event rate
// (0..1) from a deterministic seed. events lists the eligible fault
// points; empty means all.
func NewChaos(seed int64, rate float64, events ...sat.FaultEvent) *Chaos {
	c := &Chaos{rng: rand.New(rand.NewSource(seed)), rate: rate}
	if len(events) > 0 {
		c.events = make(map[sat.FaultEvent]bool, len(events))
		for _, ev := range events {
			c.events[ev] = true
		}
	}
	return c
}

// ParseChaos parses a CLI chaos spec: comma-separated key=value pairs
// "seed=N,rate=F[,event=solve|conflict|both]", e.g.
// "seed=42,rate=0.01,event=conflict". Rate is the probability of
// injecting a fault at each eligible solver event.
func ParseChaos(spec string) (*Chaos, error) {
	var (
		seed   int64 = 1
		rate   float64
		events []sat.FaultEvent
	)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("serve: bad chaos spec element %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: bad chaos seed %q", v)
			}
			seed = n
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("serve: bad chaos rate %q (want 0..1)", v)
			}
			rate = f
		case "event":
			switch v {
			case "solve":
				events = []sat.FaultEvent{sat.EventSolve}
			case "conflict":
				events = []sat.FaultEvent{sat.EventConflict}
			case "both":
				events = nil
			default:
				return nil, fmt.Errorf("serve: bad chaos event %q (want solve|conflict|both)", v)
			}
		default:
			return nil, fmt.Errorf("serve: unknown chaos key %q", k)
		}
	}
	return NewChaos(seed, rate, events...), nil
}

// Hook is the sat fault hook. It runs on solving goroutines, so the RNG
// draw is mutex-guarded; returning true interrupts the solve.
func (c *Chaos) Hook(ev sat.FaultEvent, _ sat.Stats) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rate <= 0 {
		return false
	}
	if c.events != nil && !c.events[ev] {
		return false
	}
	if c.rng.Float64() >= c.rate {
		return false
	}
	c.fired++
	return true
}

// SetRate changes the injection rate at runtime (tests arm and disarm
// specific fault kinds this way without touching the engine's hook,
// which must be installed once before queries start).
func (c *Chaos) SetRate(rate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rate = rate
}

// SetEvents changes the eligible fault kinds at runtime; no arguments
// makes every kind eligible.
func (c *Chaos) SetEvents(events ...sat.FaultEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(events) == 0 {
		c.events = nil
		return
	}
	c.events = make(map[sat.FaultEvent]bool, len(events))
	for _, ev := range events {
		c.events[ev] = true
	}
}

// Fired reports how many faults the profile has injected.
func (c *Chaos) Fired() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netarch/internal/core"
	"netarch/internal/kb"
)

// Config configures a Server. Engine is required; everything else has a
// serving-grade default.
type Config struct {
	// Engine answers the queries. The server takes ownership of its
	// fault hook (when Chaos is set) and clone-pool sizing.
	Engine *core.Engine

	// Addr is the listen address; ":0" or "127.0.0.1:0" picks a random
	// port (see Server.Addr). Default "127.0.0.1:8080".
	Addr string

	// MaxInFlight caps concurrently executing queries (the pre-cloned
	// solver pool is sized to match). Default: runtime.GOMAXPROCS(0).
	MaxInFlight int
	// QueueDepth caps requests waiting for an in-flight slot; arrivals
	// beyond MaxInFlight+QueueDepth are shed with 429 + Retry-After.
	// Default: 2×MaxInFlight.
	QueueDepth int

	// Policy is the server-side per-request budget ceiling. Clients may
	// tighten it per request (QueryRequest.Budget), never widen it. The
	// zero value imposes no ceiling.
	Policy core.Budget

	// MaxEnumerate caps the per-request enumeration class limit.
	// Default 64.
	MaxEnumerate int

	// DrainTimeout bounds the graceful drain on shutdown: in-flight
	// requests get this long to finish before connections are forced
	// closed. Default 10s.
	DrainTimeout time.Duration

	// RetryAfter is the backoff hint sent with 429/503 rejections.
	// Sub-second values are preserved exactly in the JSON body's
	// RetryAfterMS; the Retry-After header (whole seconds by RFC 9110)
	// rounds up, never down to 0. Default 1s.
	RetryAfter time.Duration

	// Prewarm lists scenario shapes to compile (or revive from the disk
	// tier) before the server reports ready. Default: the zero scenario
	// (every workload in the KB, default fleet).
	Prewarm []core.Scenario

	// ClonePool sizes the per-base pristine-clone pool. Default
	// MaxInFlight; negative disables pooling.
	ClonePool int

	// Portfolio sets the diversified solver-race width for decision
	// queries (core.Engine.SetPortfolio): <= 1 runs the single-solver
	// path (the default). Worth enabling when hard what-if/UNSAT tails
	// dominate and cores outnumber the in-flight query load.
	Portfolio int

	// Slice sets the relevance-slicing policy (core.Engine.SetSliceMode).
	// The zero value is SliceAuto: slice only when the catalog is large
	// enough to pay for itself. Answers are mode-independent.
	Slice core.SliceMode

	// Chaos, when non-nil, is wired into the engine's fault hook at
	// startup: a seeded fault-injection profile for chaos testing.
	Chaos *Chaos

	// Logf, when non-nil, receives one line per lifecycle event
	// (startup, ready, drain, recovered panics).
	Logf func(format string, args ...any)
}

// Server is the long-lived query service. Create with New, start with
// Start (or Run, which also handles shutdown), stop with Shutdown.
type Server struct {
	cfg   Config
	eng   *core.Engine
	mux   *http.ServeMux
	hs    *http.Server
	lis   net.Listener
	stats *serverStats

	sem      chan struct{} // in-flight slots
	queued   atomic.Int64
	inFlight atomic.Int64

	ready    atomic.Bool
	readyCh  chan struct{}
	draining atomic.Bool
	drainCh  chan struct{}

	// reloadMu serializes /v1/admin/reload; reloads/reloadErrors count
	// attempts for /statsz.
	reloadMu     sync.Mutex
	reloads      atomic.Int64
	reloadErrors atomic.Int64

	start time.Time
}

// New validates the config and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine is required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:8080"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInFlight
	}
	if cfg.MaxEnumerate <= 0 {
		cfg.MaxEnumerate = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if len(cfg.Prewarm) == 0 {
		cfg.Prewarm = []core.Scenario{{}}
	}
	if cfg.ClonePool == 0 {
		cfg.ClonePool = cfg.MaxInFlight
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		stats:   newServerStats(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		readyCh: make(chan struct{}),
		drainCh: make(chan struct{}),
	}
	if cfg.ClonePool > 0 {
		s.eng.SetClonePool(cfg.ClonePool)
	}
	if cfg.Portfolio > 1 {
		s.eng.SetPortfolio(cfg.Portfolio)
	}
	s.eng.SetSliceMode(cfg.Slice)
	if cfg.Chaos != nil {
		// Installed once, before any query runs; the profile's own
		// atomics make rate/event changes safe mid-flight.
		s.eng.SetFaultHook(cfg.Chaos.Hook)
	}

	s.mux = http.NewServeMux()
	for _, mode := range []string{"check", "synth", "whatif", "enumerate", "explain", "optimize"} {
		s.mux.HandleFunc("POST /v1/"+mode, s.queryHandler(mode))
	}
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s, nil
}

// Start listens and begins serving. It returns once the listener is
// bound; compilation of the prewarm set continues in the background and
// flips /readyz when done (WaitReady blocks on it).
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.start = time.Now()
	s.hs = &http.Server{Handler: s.mux}
	go func() {
		if err := s.hs.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logf("serve: listener error: %v", err)
		}
	}()
	go s.warmup()
	s.cfg.Logf("serve: listening on %s (in-flight %d, queue %d)",
		s.Addr(), s.cfg.MaxInFlight, s.cfg.QueueDepth)
	return nil
}

// warmup compiles (or disk-revives) every prewarm shape and fills the
// clone pools, then flips readiness.
func (s *Server) warmup() {
	for _, sc := range s.cfg.Prewarm {
		if err := s.eng.Prewarm(sc); err != nil {
			s.cfg.Logf("serve: prewarm failed: %v", err)
		}
	}
	s.ready.Store(true)
	close(s.readyCh)
	s.cfg.Logf("serve: ready (%s)", s.eng.CacheStats())
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.lis == nil {
		return s.cfg.Addr
	}
	return s.lis.Addr().String()
}

// WaitReady blocks until the prewarm set is compiled or the context
// expires.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.readyCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown drains the server: new requests are rejected with 503,
// queued-but-unstarted requests are shed, and in-flight requests get
// until ctx's deadline to finish. After the drain the disk cache is
// flushed (any in-memory base without a snapshot file is persisted).
// Returns nil on a clean drain; the context error if the deadline
// passed with requests still in flight (connections are then closed).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	s.cfg.Logf("serve: draining (%d in flight, %d queued)", s.inFlight.Load(), s.queued.Load())
	err := s.hs.Shutdown(ctx)
	if err != nil {
		_ = s.hs.Close()
	}
	if n := s.eng.FlushDiskCache(); n > 0 {
		s.cfg.Logf("serve: flushed %d base snapshots to disk", n)
	}
	s.cfg.Logf("serve: drained")
	return err
}

// Run starts the server and blocks until ctx is canceled (the CLI wires
// SIGINT/SIGTERM into it), then drains under the configured
// DrainTimeout. Returns nil on a clean drain — the process should then
// exit 0.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(dctx)
}

// admitResult says how admission ended.
type admitResult int

const (
	admitOK admitResult = iota
	admitQueueFull
	admitDraining
	admitClientGone
)

// admit implements admission control: an immediate in-flight slot if
// one is free, else a bounded queue wait. The queue sheds on overflow,
// drain start, and client disconnect.
func (s *Server) admit(ctx context.Context) admitResult {
	if s.draining.Load() {
		return admitDraining
	}
	select {
	case s.sem <- struct{}{}:
		return admitOK
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return admitQueueFull
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return admitOK
	case <-s.drainCh:
		return admitDraining
	case <-ctx.Done():
		return admitClientGone
	}
}

func (s *Server) release() { <-s.sem }

// queryHandler builds the handler for one query mode. Every path
// through it records exactly one outcome on the mode's stats, and the
// response body is always either a QueryResponse or a typed ErrorBody.
func (s *Server) queryHandler(mode string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ms := s.stats.mode(mode)

		switch s.admit(r.Context()) {
		case admitQueueFull:
			s.reject(w, ms, start, http.StatusTooManyRequests, "shed",
				fmt.Sprintf("admission queue full (%d in flight, %d queued)",
					s.cfg.MaxInFlight, s.cfg.QueueDepth))
			return
		case admitDraining:
			s.reject(w, ms, start, http.StatusServiceUnavailable, "draining", "server is draining")
			return
		case admitClientGone:
			ms.record(outcomeShed, time.Since(start))
			return // client already gone; nothing to write
		}
		defer s.release()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		// Panic isolation: a panicking query must not take down the
		// server. The request's solver clone is abandoned where it
		// stands — the pool never re-admits handed-out clones, so the
		// next request gets a pristine one.
		defer func() {
			if p := recover(); p != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				s.cfg.Logf("serve: recovered panic in %s: %v\n%s", mode, p, buf)
				s.writeError(w, ms, start, http.StatusInternalServerError, ErrorInfo{
					Kind: "internal", Detail: fmt.Sprint(p),
				})
			}
		}()

		var req QueryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, ms, start, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Detail: err.Error(),
			})
			return
		}
		if mode == "check" && req.Design == nil {
			s.writeError(w, ms, start, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Detail: "check requires a design",
			})
			return
		}
		if mode == "whatif" && req.Delta == nil {
			s.writeError(w, ms, start, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Detail: "whatif requires a delta",
			})
			return
		}
		if mode == "optimize" && len(req.Objectives) == 0 {
			s.writeError(w, ms, start, http.StatusBadRequest, ErrorInfo{
				Kind: "bad_request", Detail: "optimize requires at least one objective",
			})
			return
		}

		budget := tighten(s.cfg.Policy, req.Budget)
		resp, errInfo, status := s.execute(r.Context(), mode, &req, budget)
		if errInfo != nil {
			s.writeError(w, ms, start, status, *errInfo)
			return
		}
		outcome := outcomeOK
		if resp.Degraded {
			outcome = outcomeDegraded
		}
		s.writeJSON(w, http.StatusOK, resp)
		ms.record(outcome, time.Since(start))
	}
}

// execute runs one admitted, parsed query and renders the outcome. It
// returns either a response or a typed error with its HTTP status.
func (s *Server) execute(ctx context.Context, mode string, req *QueryRequest, budget core.Budget) (*QueryResponse, *ErrorInfo, int) {
	sc := req.Scenario.toScenario()
	resp := &QueryResponse{Mode: mode}

	fail := func(err error) (*QueryResponse, *ErrorInfo, int) {
		var ex *core.ErrResourceExhausted
		if errors.As(err, &ex) {
			info := &ErrorInfo{Kind: "resource_exhausted", Cause: ex.Cause, Detail: err.Error()}
			sp := spentJSON(ex.Spent)
			info.Spent = &sp
			status := http.StatusGatewayTimeout
			if errors.Is(err, context.Canceled) {
				info.Kind = "client_gone"
			}
			return nil, info, status
		}
		return nil, &ErrorInfo{Kind: "bad_request", Detail: err.Error()}, http.StatusBadRequest
	}

	switch mode {
	case "synth", "explain":
		rep, err := s.eng.SynthesizeCtx(ctx, sc, budget)
		if err != nil {
			return fail(err)
		}
		resp.Verdict = rep.Verdict.String()
		resp.Explanation = explanationOut(rep.Explanation)
		if mode == "synth" {
			resp.Design = designOut(rep.Design)
		}
		resp.Spent = spentJSON(rep.Spent)
		if resp.Explanation != nil && resp.Explanation.Approximate {
			resp.Degraded = true
			resp.DegradedCause = resp.Explanation.Cause
		}

	case "check":
		rep, err := s.eng.CheckCtx(ctx, req.Design.toDesign(), sc, budget)
		if err != nil {
			return fail(err)
		}
		resp.Verdict = rep.Verdict.String()
		resp.Design = designOut(rep.Design)
		resp.Explanation = explanationOut(rep.Explanation)
		resp.Spent = spentJSON(rep.Spent)
		if resp.Explanation != nil && resp.Explanation.Approximate {
			resp.Degraded = true
			resp.DegradedCause = resp.Explanation.Cause
		}

	case "whatif":
		before, err := s.eng.SynthesizeCtx(ctx, sc, budget)
		if err != nil {
			return fail(err)
		}
		after, err := s.eng.SynthesizeCtx(ctx, req.Delta.apply(sc), budget)
		if err != nil {
			return fail(err)
		}
		resp.Before = outcomeOf(before)
		resp.After = outcomeOf(after)
		resp.Spent = spentJSON(core.BudgetSpent{
			Conflicts: before.Spent.Conflicts + after.Spent.Conflicts,
			Decisions: before.Spent.Decisions + after.Spent.Decisions,
			Wall:      before.Spent.Wall + after.Spent.Wall,
		})
		for _, o := range []*Outcome{resp.Before, resp.After} {
			if o.Explanation != nil && o.Explanation.Approximate {
				resp.Degraded = true
				resp.DegradedCause = o.Explanation.Cause
			}
		}

	case "enumerate":
		max := req.Max
		if max <= 0 || max > s.cfg.MaxEnumerate {
			max = s.cfg.MaxEnumerate
		}
		res, err := s.eng.EnumerateCtx(ctx, sc, max, budget)
		if err != nil {
			return fail(err)
		}
		for _, d := range res.Designs {
			resp.Designs = append(resp.Designs, designOut(d))
		}
		resp.Truncated = res.Truncated
		resp.TruncateReason = res.Reason
		resp.Spent = spentJSON(res.Spent)
		if res.Exhausted != nil {
			// Budget-truncated but still witnessed: a degraded 200, per
			// the enumeration degradation contract.
			resp.Degraded = true
			resp.DegradedCause = res.Exhausted.Cause
		}

	case "optimize":
		objs := make([]core.Objective, len(req.Objectives))
		for i, name := range req.Objectives {
			obj, err := core.ParseObjective(name)
			if err != nil {
				return nil, &ErrorInfo{Kind: "bad_request", Detail: err.Error()}, http.StatusBadRequest
			}
			objs[i] = obj
		}
		// The strategy is threaded per-request (never an engine-wide
		// knob): concurrent requests with different strategies must not
		// race each other.
		strat, err := core.ParseOptimizeStrategy(req.Strategy)
		if err != nil {
			return nil, &ErrorInfo{Kind: "bad_request", Detail: err.Error()}, http.StatusBadRequest
		}
		if req.Pareto {
			res, err := s.eng.ParetoWithStrategyCtx(ctx, sc, objs, budget, strat)
			if err != nil {
				return fail(err)
			}
			for _, p := range res.Points {
				resp.ParetoPoints = append(resp.ParetoPoints, &ParetoPointOut{
					Values: p.Values, Design: designOut(p.Design),
				})
			}
			resp.Complete = res.Complete
			resp.Spent = spentJSON(res.Spent)
			if res.Exhausted != nil {
				// Partial frontier: degraded 200, mirroring enumerate.
				resp.Degraded = true
				resp.DegradedCause = res.Exhausted.Cause
			}
			return resp, nil, 0
		}
		res, err := s.eng.OptimizeWithStrategyCtx(ctx, sc, objs, budget, strat)
		if err != nil {
			return fail(err)
		}
		resp.Verdict = res.Verdict.String()
		resp.Design = designOut(res.Design)
		resp.Explanation = explanationOut(res.Explanation)
		resp.ObjectiveValues = res.ObjectiveValues
		resp.LowerBounds = res.LowerBounds
		resp.Spent = spentJSON(res.Spent)
		if res.Approximate {
			// Budget-tripped but witnessed: the response still carries the
			// best design plus the proven [lower_bound, value] bracket.
			resp.Degraded = true
			resp.DegradedCause = res.ApproxCause
		}

	default:
		return nil, &ErrorInfo{Kind: "bad_request", Detail: "unknown mode " + mode}, http.StatusBadRequest
	}
	return resp, nil, 0
}

// reject sheds one request with a Retry-After hint and a typed body. The
// header speaks whole seconds (RFC 9110), so the configured hint rounds
// UP and clamps to >= 1 — the old `hint / time.Second` truncation turned
// any sub-second hint into `Retry-After: 0`, which compliant clients
// read as "retry immediately", amplifying the very overload being shed.
// The JSON body's RetryAfterMS carries the exact duration.
func (s *Server) reject(w http.ResponseWriter, ms *modeStats, start time.Time, status int, kind, detail string) {
	hint := s.cfg.RetryAfter
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, status, ErrorBody{Error: ErrorInfo{
		Kind: kind, Detail: detail, RetryAfterMS: hint.Milliseconds(),
	}})
	ms.record(outcomeShed, time.Since(start))
}

// writeError renders a typed error body and records the error outcome.
func (s *Server) writeError(w http.ResponseWriter, ms *modeStats, start time.Time, status int, info ErrorInfo) {
	s.writeJSON(w, status, ErrorBody{Error: info})
	ms.record(outcomeError, time.Since(start))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // write errors mean the client is gone
}

// ReloadResponse is the /v1/admin/reload success body: the engine-level
// update summary plus the wall time the swap took.
type ReloadResponse struct {
	// Changes is the number of section-level KB differences applied.
	Changes int `json:"changes"`
	// BasesUpdated / BasesDropped: cached bases delta-recompiled in place
	// vs evicted because they no longer compile under the new KB.
	BasesUpdated int `json:"bases_updated"`
	BasesDropped int `json:"bases_dropped"`
	// ShardsReused / ShardsConverted: per-assertion CNF shards spliced
	// from the previous compiles vs reconverted.
	ShardsReused    int `json:"shards_reused"`
	ShardsConverted int `json:"shards_converted"`
	// ProfilesCarried: warm-start profiles that survived the update.
	ProfilesCarried int `json:"profiles_carried"`
	// SnapshotsRewritten: disk snapshots re-persisted under the new KB.
	SnapshotsRewritten int `json:"snapshots_rewritten"`
	// ElapsedMS is the wall time of the whole reload.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// maxReloadBody bounds the reload request body; catalogs are small (the
// full case-study KB is ~100KB), so 32MB is generous without letting a
// bad client balloon the heap.
const maxReloadBody = 32 << 20

// handleReload swaps the knowledge base for the one in the request body
// (KB JSON, as written by kb.Save) without shedding in-flight requests:
// Engine.UpdateKB delta-recompiles the cached bases while running queries
// finish on clones of the old ones, so there is no drain, no downtime,
// and no cold-cache window — the very first post-reload query hits a
// revalidated base. Reloads serialize; a reload during drain is refused.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ms := s.stats.mode("reload")
	if s.draining.Load() {
		s.reject(w, ms, start, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	// Decode and validate separately (kb.Load fuses them): a syntax
	// problem is a 400, a well-formed KB that fails semantic validation
	// (UpdateKB validates before swapping) is a 422.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReloadBody))
	dec.DisallowUnknownFields()
	var k kb.KB
	if err := dec.Decode(&k); err != nil {
		s.reloadErrors.Add(1)
		s.writeError(w, ms, start, http.StatusBadRequest, ErrorInfo{
			Kind: "bad_request", Detail: "parsing knowledge base: " + err.Error(),
		})
		return
	}
	s.reloadMu.Lock()
	up, err := s.eng.UpdateKB(&k)
	s.reloadMu.Unlock()
	if err != nil {
		s.reloadErrors.Add(1)
		s.writeError(w, ms, start, http.StatusUnprocessableEntity, ErrorInfo{
			Kind: "invalid_kb", Detail: err.Error(),
		})
		return
	}
	s.reloads.Add(1)
	s.cfg.Logf("serve: reloaded KB: %s", up)
	s.writeJSON(w, http.StatusOK, ReloadResponse{
		Changes:      len(up.Diff),
		BasesUpdated: up.BasesUpdated, BasesDropped: up.BasesDropped,
		ShardsReused: up.ShardsReused, ShardsConverted: up.ShardsConverted,
		ProfilesCarried:    up.ProfilesCarried,
		SnapshotsRewritten: up.SnapshotsRewritten,
		ElapsedMS:          time.Since(start).Milliseconds(),
	})
	ms.record(outcomeOK, time.Since(start))
}

// handleHealthz: liveness — the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz: readiness — the prewarm set is compiled (or revived)
// and the server is not draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := s.ready.Load() && !s.draining.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, map[string]any{
		"ready":    ready,
		"draining": s.draining.Load(),
	})
}

// CacheStatsJSON is the /statsz wire form of core.CacheStats.
type CacheStatsJSON struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	DiskHits      int64 `json:"disk_hits"`
	DiskMisses    int64 `json:"disk_misses"`
	DiskWrites    int64 `json:"disk_writes"`
	DiskEvictions int64 `json:"disk_evictions"`
	DiskCorrupt   int64 `json:"disk_corrupt"`
	DiskStale     int64 `json:"disk_stale"`
	PoolHits      int64 `json:"pool_hits"`
	PoolMisses    int64 `json:"pool_misses"`
	SliceComputed int64 `json:"slice_computed"`
	SliceHits     int64 `json:"slice_hits"`
	SliceSKUsIn   int64 `json:"slice_skus_in"`
	SliceSKUsKept int64 `json:"slice_skus_kept"`
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeMS     int64                    `json:"uptime_ms"`
	Ready        bool                     `json:"ready"`
	Draining     bool                     `json:"draining"`
	InFlight     int64                    `json:"in_flight"`
	Queued       int64                    `json:"queued"`
	Reloads      int64                    `json:"reloads"`
	ReloadErrors int64                    `json:"reload_errors"`
	Cache        CacheStatsJSON           `json:"cache"`
	Modes        map[string]ModeStatsJSON `json:"modes"`
}

// handleStatsz reports the full counter set: engine cache stats plus
// per-mode request/outcome/latency counters.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	cs := s.eng.CacheStats()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeMS:     time.Since(s.start).Milliseconds(),
		Ready:        s.ready.Load(),
		Draining:     s.draining.Load(),
		InFlight:     s.inFlight.Load(),
		Queued:       s.queued.Load(),
		Reloads:      s.reloads.Load(),
		ReloadErrors: s.reloadErrors.Load(),
		Cache: CacheStatsJSON{
			Size: cs.Size, Capacity: cs.Capacity,
			Hits: cs.Hits, Misses: cs.Misses,
			DiskHits: cs.DiskHits, DiskMisses: cs.DiskMisses,
			DiskWrites: cs.DiskWrites, DiskEvictions: cs.DiskEvictions,
			DiskCorrupt: cs.DiskCorrupt, DiskStale: cs.DiskStale,
			PoolHits: cs.PoolHits, PoolMisses: cs.PoolMisses,
			SliceComputed: cs.SliceComputed, SliceHits: cs.SliceHits,
			SliceSKUsIn: cs.SliceSKUsIn, SliceSKUsKept: cs.SliceSKUsKept,
		},
		Modes: s.stats.snapshot(),
	})
}

// Gauges reports the instantaneous in-flight and queued request counts
// (also exposed on /statsz).
func (s *Server) Gauges() (inFlight, queued int64) {
	return s.inFlight.Load(), s.queued.Load()
}

// Package serve is the long-lived query service over the reasoning
// engine: an HTTP/JSON front end that holds warm compiled bases (memory
// plus the persistent disk tier) and answers concurrent check / synth /
// whatif / enumerate / explain requests from a bounded pool of
// pre-cloned arena solvers.
//
// Robustness is the core of the design (DESIGN.md §12): per-request
// admission control (in-flight and queue caps), graceful load-shedding
// (429 + Retry-After when the queue is full, 503 while draining),
// per-request resource budgets derived from server policy with
// client-supplied tightening only, degraded-but-witnessed responses
// mapped onto the PR 1 exit taxonomy as typed JSON error bodies, panic
// isolation per request, and a clean SIGTERM drain. A seeded chaos
// profile (chaos.go) injects solver faults so every failure mode is
// testable end to end.
package serve

import (
	"time"

	"netarch/internal/core"
	"netarch/internal/kb"
)

// This file defines the wire types. They carry explicit JSON tags and
// are converted to/from the internal core types at the boundary, so the
// wire format is stable regardless of internal struct evolution.

// ScenarioJSON is the wire form of core.Scenario.
type ScenarioJSON struct {
	Context          map[string]bool     `json:"context,omitempty"`
	NumServers       int                 `json:"num_servers,omitempty"`
	NumSwitches      int                 `json:"num_switches,omitempty"`
	Require          []string            `json:"require,omitempty"`
	Workloads        []string            `json:"workloads,omitempty"`
	PinnedSystems    []string            `json:"pinned_systems,omitempty"`
	ForbiddenSystems []string            `json:"forbidden_systems,omitempty"`
	PinnedHardware   map[string]string   `json:"pinned_hardware,omitempty"`
	AllowedHardware  map[string][]string `json:"allowed_hardware,omitempty"`
	Bounds           []BoundJSON         `json:"bounds,omitempty"`
	MaxCostUSD       int64               `json:"max_cost_usd,omitempty"`
	RackServers      map[string]int      `json:"rack_servers,omitempty"`
}

// BoundJSON is the wire form of core.PerformanceBound.
type BoundJSON struct {
	Dimension string `json:"dimension"`
	Reference string `json:"reference"`
	Strict    bool   `json:"strict,omitempty"`
}

// toScenario converts the wire scenario into the engine's form.
func (s *ScenarioJSON) toScenario() core.Scenario {
	sc := core.Scenario{
		Context:          s.Context,
		NumServers:       s.NumServers,
		NumSwitches:      s.NumSwitches,
		Workloads:        s.Workloads,
		PinnedSystems:    s.PinnedSystems,
		ForbiddenSystems: s.ForbiddenSystems,
		MaxCostUSD:       s.MaxCostUSD,
		RackServers:      s.RackServers,
	}
	for _, p := range s.Require {
		sc.Require = append(sc.Require, kb.Property(p))
	}
	if len(s.PinnedHardware) > 0 {
		sc.PinnedHardware = make(map[kb.HardwareKind]string, len(s.PinnedHardware))
		for k, v := range s.PinnedHardware {
			sc.PinnedHardware[kb.HardwareKind(k)] = v
		}
	}
	if len(s.AllowedHardware) > 0 {
		sc.AllowedHardware = make(map[kb.HardwareKind][]string, len(s.AllowedHardware))
		for k, v := range s.AllowedHardware {
			sc.AllowedHardware[kb.HardwareKind(k)] = v
		}
	}
	for _, b := range s.Bounds {
		sc.Bounds = append(sc.Bounds, core.PerformanceBound{
			Dimension: b.Dimension, Reference: b.Reference, Strict: b.Strict,
		})
	}
	return sc
}

// DesignJSON is the wire form of a concrete design (check requests).
type DesignJSON struct {
	Systems  []string          `json:"systems"`
	Hardware map[string]string `json:"hardware,omitempty"`
}

func (d *DesignJSON) toDesign() core.Design {
	out := core.Design{Systems: d.Systems}
	if len(d.Hardware) > 0 {
		out.Hardware = make(map[kb.HardwareKind]string, len(d.Hardware))
		for k, v := range d.Hardware {
			out.Hardware[kb.HardwareKind(k)] = v
		}
	}
	return out
}

// DeltaJSON is a what-if delta: changes layered over the base scenario.
// The whatif mode answers the base and the modified scenario in one
// request, so the client sees the delta's effect directly.
type DeltaJSON struct {
	// Context entries overlay (add or override) the base context pins.
	Context map[string]bool `json:"context,omitempty"`
	// RequireAdd / PinAdd / ForbidAdd append to the base lists.
	RequireAdd []string `json:"require_add,omitempty"`
	PinAdd     []string `json:"pin_add,omitempty"`
	ForbidAdd  []string `json:"forbid_add,omitempty"`
	// MaxCostUSD overrides the budget cap when non-zero.
	MaxCostUSD int64 `json:"max_cost_usd,omitempty"`
}

// apply layers the delta over a copy of the base scenario.
func (d *DeltaJSON) apply(base core.Scenario) core.Scenario {
	sc := base
	if len(d.Context) > 0 {
		merged := make(map[string]bool, len(base.Context)+len(d.Context))
		for k, v := range base.Context {
			merged[k] = v
		}
		for k, v := range d.Context {
			merged[k] = v
		}
		sc.Context = merged
	}
	if len(d.RequireAdd) > 0 {
		sc.Require = append([]kb.Property(nil), base.Require...)
		for _, p := range d.RequireAdd {
			sc.Require = append(sc.Require, kb.Property(p))
		}
	}
	if len(d.PinAdd) > 0 {
		sc.PinnedSystems = append(append([]string(nil), base.PinnedSystems...), d.PinAdd...)
	}
	if len(d.ForbidAdd) > 0 {
		sc.ForbiddenSystems = append(append([]string(nil), base.ForbiddenSystems...), d.ForbidAdd...)
	}
	if d.MaxCostUSD != 0 {
		sc.MaxCostUSD = d.MaxCostUSD
	}
	return sc
}

// BudgetJSON is the client's requested per-request budget. It can only
// tighten the server's policy budget, never widen it (see tighten).
type BudgetJSON struct {
	TimeoutMS    int64 `json:"timeout_ms,omitempty"`
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	MaxDecisions int64 `json:"max_decisions,omitempty"`
}

// tighten composes the server policy budget with a client request: each
// client bound applies only where it is stricter than (or the policy has
// no bound on) the corresponding policy field. A policy of all zeros
// means the server imposes no ceiling, so any client bound applies.
func tighten(policy core.Budget, req *BudgetJSON) core.Budget {
	b := policy
	if req == nil {
		return b
	}
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && (b.Timeout == 0 || t < b.Timeout) {
		b.Timeout = t
	}
	if req.MaxConflicts > 0 && (b.MaxConflicts == 0 || req.MaxConflicts < b.MaxConflicts) {
		b.MaxConflicts = req.MaxConflicts
	}
	if req.MaxDecisions > 0 && (b.MaxDecisions == 0 || req.MaxDecisions < b.MaxDecisions) {
		b.MaxDecisions = req.MaxDecisions
	}
	return b
}

// QueryRequest is the body of every POST /v1/<mode> request. Scenario is
// required; the other fields are mode-specific (Design for check, Delta
// for whatif, Max for enumerate, Objectives/Strategy/Pareto for
// optimize).
type QueryRequest struct {
	Scenario ScenarioJSON `json:"scenario"`
	Design   *DesignJSON  `json:"design,omitempty"`
	Delta    *DeltaJSON   `json:"delta,omitempty"`
	Max      int          `json:"max,omitempty"`
	Budget   *BudgetJSON  `json:"budget,omitempty"`

	// Optimize fields. Objectives are priority-ordered level names
	// ("cost", "cores", "systems", "power", "ports", "latency",
	// "order:<dimension>"); Strategy is "binary" (default) or "linear";
	// Pareto switches from lexicographic optimization to full
	// Pareto-front enumeration over the same objectives.
	Objectives []string `json:"objectives,omitempty"`
	Strategy   string   `json:"strategy,omitempty"`
	Pareto     bool     `json:"pareto,omitempty"`
}

// DesignOut is the wire form of an answered design.
type DesignOut struct {
	Systems  []string          `json:"systems"`
	Hardware map[string]string `json:"hardware,omitempty"`
	Metrics  map[string]int64  `json:"metrics,omitempty"`
}

func designOut(d *core.Design) *DesignOut {
	if d == nil {
		return nil
	}
	out := &DesignOut{Systems: d.Systems, Metrics: d.Metrics}
	if len(d.Hardware) > 0 {
		out.Hardware = make(map[string]string, len(d.Hardware))
		for k, v := range d.Hardware {
			out.Hardware[string(k)] = v
		}
	}
	return out
}

// ExplanationOut is the wire form of a minimal conflict explanation.
type ExplanationOut struct {
	Conflicts []ConflictOut `json:"conflicts"`
	// Approximate: minimization stopped on a tripped budget; the
	// conflicts are a correct but possibly non-minimal set.
	Approximate bool   `json:"approximate,omitempty"`
	Cause       string `json:"cause,omitempty"`
}

// ConflictOut names one conflicting constraint group.
type ConflictOut struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
}

func explanationOut(ex *core.Explanation) *ExplanationOut {
	if ex == nil {
		return nil
	}
	out := &ExplanationOut{Approximate: ex.Approximate, Cause: ex.ApproxCause}
	for _, c := range ex.Conflicts {
		out.Conflicts = append(out.Conflicts, ConflictOut{Name: c.Name, Note: c.Note})
	}
	return out
}

// Outcome is one verdict + witness/explanation pair (whatif returns two).
type Outcome struct {
	Verdict     string          `json:"verdict"`
	Design      *DesignOut      `json:"design,omitempty"`
	Explanation *ExplanationOut `json:"explanation,omitempty"`
}

func outcomeOf(rep *core.Report) *Outcome {
	return &Outcome{
		Verdict:     rep.Verdict.String(),
		Design:      designOut(rep.Design),
		Explanation: explanationOut(rep.Explanation),
	}
}

// SpentJSON accounts for the resources a request consumed.
type SpentJSON struct {
	Conflicts int64   `json:"conflicts"`
	Decisions int64   `json:"decisions"`
	WallMS    float64 `json:"wall_ms"`
}

func spentJSON(sp core.BudgetSpent) SpentJSON {
	return SpentJSON{
		Conflicts: sp.Conflicts,
		Decisions: sp.Decisions,
		WallMS:    float64(sp.Wall) / float64(time.Millisecond),
	}
}

// QueryResponse is the 200 body of every query mode. Degraded reports a
// budget-tripped-but-still-witnessed answer (approximate explanation,
// budget-truncated enumeration); DegradedCause names the tripped budget.
type QueryResponse struct {
	Mode        string          `json:"mode"`
	Verdict     string          `json:"verdict,omitempty"`
	Design      *DesignOut      `json:"design,omitempty"`
	Explanation *ExplanationOut `json:"explanation,omitempty"`

	// Enumerate fields.
	Designs        []*DesignOut `json:"designs,omitempty"`
	Truncated      bool         `json:"truncated,omitempty"`
	TruncateReason string       `json:"truncate_reason,omitempty"`

	// Whatif fields.
	Before *Outcome `json:"before,omitempty"`
	After  *Outcome `json:"after,omitempty"`

	// Optimize fields. ObjectiveValues[i] is the best witnessed value of
	// the i-th requested objective; LowerBounds[i] is its proven lower
	// bound. On a certified (non-degraded) response the two are equal
	// level by level; on a degraded response the true optimum of the
	// last present level lies in [LowerBounds[i], ObjectiveValues[i]] —
	// the bounded-suboptimality contract (DESIGN.md §15).
	ObjectiveValues []int64 `json:"objective_values,omitempty"`
	LowerBounds     []int64 `json:"lower_bounds,omitempty"`
	// ParetoPoints is the non-dominated frontier (pareto=true), sorted
	// by objective vector; Complete reports it is provably the whole
	// frontier (false under a budget trip, with Degraded set).
	ParetoPoints []*ParetoPointOut `json:"pareto_points,omitempty"`
	Complete     bool              `json:"complete,omitempty"`

	Degraded      bool      `json:"degraded,omitempty"`
	DegradedCause string    `json:"degraded_cause,omitempty"`
	Spent         SpentJSON `json:"spent"`
}

// ParetoPointOut is one non-dominated objective vector with a witness.
type ParetoPointOut struct {
	Values []int64    `json:"values"`
	Design *DesignOut `json:"design,omitempty"`
}

// ErrorBody is the typed JSON body of every non-200 response — the PR 1
// exit taxonomy mapped onto HTTP (see DESIGN.md §12 for the full table):
//
//	kind                HTTP  meaning
//	bad_request         400   malformed body / unknown names
//	shed                429   admission queue full (Retry-After set)
//	draining            503   server shutting down (Retry-After set)
//	client_gone         499*  request context canceled by the client
//	resource_exhausted  504   budget tripped before any verdict
//	internal            500   recovered panic; the clone is discarded
//
// (*written as 504 on the wire: Go's http package has no 499; Kind
// distinguishes them.)
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo describes one typed failure.
type ErrorInfo struct {
	Kind string `json:"kind"`
	// Cause names the tripped budget for resource_exhausted errors
	// ("deadline", "conflict budget", "decision budget", "interrupt",
	// "canceled"), matching ErrResourceExhausted.Cause.
	Cause  string `json:"cause,omitempty"`
	Detail string `json:"detail,omitempty"`
	// RetryAfterMS mirrors the Retry-After header for shed/draining.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Spent is populated for resource_exhausted errors.
	Spent *SpentJSON `json:"spent,omitempty"`
}

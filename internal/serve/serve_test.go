package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/sat"
)

// testServer builds, starts, and readies a server over the case-study
// KB; the caller gets its base URL. mutate (optional) adjusts the config
// before New.
func testServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	eng, err := core.New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Engine:       eng,
		Addr:         "127.0.0.1:0",
		MaxInFlight:  4,
		QueueDepth:   8,
		DrainTimeout: 5 * time.Second,
		Prewarm:      []core.Scenario{{Workloads: []string{"inference_app"}}},
		Logf:         t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
	return s, "http://" + s.Addr()
}

// post sends one query and returns the status plus decoded body (into
// out when non-nil); the raw bytes always come back for error reporting.
func post(t *testing.T, url string, req any, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("status %d: body is not valid JSON for %T: %v\n%s", resp.StatusCode, out, err, raw)
		}
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

// checkStatsReconcile asserts the /statsz invariant: for every mode,
// requests == ok + degraded + shed + errors — at any instant, not just
// at quiesce.
func checkStatsReconcile(t *testing.T, st *StatsResponse) {
	t.Helper()
	for mode, m := range st.Modes {
		if m.Requests != m.OK+m.Degraded+m.Shed+m.Errors {
			t.Errorf("mode %s does not reconcile: requests=%d ok=%d degraded=%d shed=%d errors=%d",
				mode, m.Requests, m.OK, m.Degraded, m.Shed, m.Errors)
		}
	}
}

var scInference = ScenarioJSON{Workloads: []string{"inference_app"}}

// TestServeModes drives one request through every query mode and the
// three observability endpoints, asserting well-formed responses and
// reconciling statsz.
func TestServeModes(t *testing.T) {
	_, base := testServer(t, nil)

	// synth: a feasible scenario yields a design.
	var qr QueryResponse
	status, raw := post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, &qr)
	if status != http.StatusOK || qr.Verdict != "FEASIBLE" || qr.Design == nil {
		t.Fatalf("synth: status %d, verdict %q, design %v\n%s", status, qr.Verdict, qr.Design, raw)
	}

	// check: the synthesized design must check out against its scenario.
	var cr QueryResponse
	status, raw = post(t, base+"/v1/check", QueryRequest{
		Scenario: scInference,
		Design:   &DesignJSON{Systems: qr.Design.Systems, Hardware: qr.Design.Hardware},
	}, &cr)
	if status != http.StatusOK || cr.Verdict != "FEASIBLE" {
		t.Fatalf("check: status %d verdict %q\n%s", status, cr.Verdict, raw)
	}

	// explain: an infeasible scenario yields a conflict explanation.
	var er QueryResponse
	status, raw = post(t, base+"/v1/explain", QueryRequest{
		Scenario: ScenarioJSON{
			Workloads:     []string{"inference_app"},
			PinnedSystems: []string{"simon"},
			Context:       map[string]bool{"lossless_fabric": false},
		},
	}, &er)
	if status != http.StatusOK {
		t.Fatalf("explain: status %d\n%s", status, raw)
	}
	if er.Verdict == "INFEASIBLE" && (er.Explanation == nil || len(er.Explanation.Conflicts) == 0) {
		t.Fatalf("explain: infeasible with no conflicts\n%s", raw)
	}

	// whatif: base vs delta, two outcomes.
	var wr QueryResponse
	status, raw = post(t, base+"/v1/whatif", QueryRequest{
		Scenario: scInference,
		Delta:    &DeltaJSON{Context: map[string]bool{"lossless_fabric": false}},
	}, &wr)
	if status != http.StatusOK || wr.Before == nil || wr.After == nil {
		t.Fatalf("whatif: status %d before=%v after=%v\n%s", status, wr.Before, wr.After, raw)
	}

	// enumerate: bounded class enumeration.
	var nr QueryResponse
	status, raw = post(t, base+"/v1/enumerate", QueryRequest{Scenario: scInference, Max: 4}, &nr)
	if status != http.StatusOK {
		t.Fatalf("enumerate: status %d\n%s", status, raw)
	}
	if len(nr.Designs) == 0 {
		t.Fatalf("enumerate returned no designs\n%s", raw)
	}

	// Observability endpoints.
	var hz map[string]any
	if st := get(t, base+"/healthz", &hz); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}
	var rz map[string]any
	if st := get(t, base+"/readyz", &rz); st != http.StatusOK {
		t.Fatalf("readyz: %d (%v)", st, rz)
	}
	var sz StatsResponse
	if st := get(t, base+"/statsz", &sz); st != http.StatusOK {
		t.Fatalf("statsz: %d", st)
	}
	checkStatsReconcile(t, &sz)
	var total int64
	for _, m := range sz.Modes {
		total += m.Requests
	}
	if total != 5 {
		t.Fatalf("statsz saw %d requests, want 5: %+v", total, sz.Modes)
	}
	if sz.Cache.PoolHits == 0 {
		t.Errorf("prewarmed server answered without pool hits: %+v", sz.Cache)
	}
}

// TestServeBadRequests pins the 400 taxonomy: malformed JSON, missing
// mode-specific fields, unknown fields. Every body is a typed ErrorBody.
func TestServeBadRequests(t *testing.T) {
	_, base := testServer(t, nil)

	for _, tc := range []struct {
		name string
		body string
		path string
	}{
		{"malformed", `{"scenario": nope}`, "/v1/synth"},
		{"unknown field", `{"scenarioooo": {}}`, "/v1/synth"},
		{"check without design", `{"scenario": {}}`, "/v1/check"},
		{"whatif without delta", `{"scenario": {}}`, "/v1/whatif"},
	} {
		resp, err := http.Post(base+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var eb ErrorBody
		if err := json.Unmarshal(raw, &eb); err != nil {
			t.Fatalf("%s: non-JSON error body: %s", tc.name, raw)
		}
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Kind != "bad_request" {
			t.Fatalf("%s: status %d kind %q, want 400 bad_request", tc.name, resp.StatusCode, eb.Error.Kind)
		}
	}
}

// TestServeBudgetDegraded: a starvation budget produces either a typed
// resource_exhausted error (504, with cause and spent) or a degraded 200
// — never a malformed body — and the outcome lands in the right statsz
// counter.
func TestServeBudgetDegraded(t *testing.T) {
	_, base := testServer(t, nil)

	var qr QueryResponse
	status, raw := post(t, base+"/v1/enumerate", QueryRequest{
		Scenario: scInference,
		Max:      8,
		Budget:   &BudgetJSON{MaxConflicts: 1},
	}, nil)
	switch status {
	case http.StatusOK:
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("degraded 200 with bad body: %s", raw)
		}
		if !qr.Degraded && qr.Truncated {
			t.Fatalf("budget-truncated enumeration not marked degraded: %s", raw)
		}
	case http.StatusGatewayTimeout:
		var eb ErrorBody
		if err := json.Unmarshal(raw, &eb); err != nil {
			t.Fatalf("504 with bad body: %s", raw)
		}
		if eb.Error.Kind != "resource_exhausted" || eb.Error.Cause == "" || eb.Error.Spent == nil {
			t.Fatalf("504 body incomplete: %s", raw)
		}
	default:
		t.Fatalf("budget-starved enumerate: unexpected status %d\n%s", status, raw)
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	checkStatsReconcile(t, &sz)
	m := sz.Modes["enumerate"]
	if m.Degraded+m.Errors == 0 {
		t.Fatalf("budget trip recorded as neither degraded nor error: %+v", m)
	}
}

// TestServeFaultMatrix exercises the fault-injection matrix through the
// HTTP layer: for each sat.FaultEvent kind, inject mid-request at 100%
// rate and assert the response is a well-formed typed error or a
// degraded-but-witnessed result; then disarm and assert the next request
// succeeds cleanly (the faulted clone was quarantined, not reused).
func TestServeFaultMatrix(t *testing.T) {
	chaos := NewChaos(1, 0) // installed at startup, armed per case
	_, base := testServer(t, func(c *Config) { c.Chaos = chaos })

	cases := []struct {
		name  string
		event sat.FaultEvent
	}{
		{"solve-entry", sat.EventSolve},
		{"conflict-boundary", sat.EventConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chaos.SetEvents(tc.event)
			chaos.SetRate(1.0)
			firedBefore := chaos.Fired()

			status, raw := post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, nil)
			switch status {
			case http.StatusOK:
				var qr QueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					t.Fatalf("200 with bad body: %s", raw)
				}
				// A conflict-boundary fault can miss a conflict-free
				// solve; only a fault that actually fired must degrade.
				if chaos.Fired() > firedBefore && !qr.Degraded && qr.Verdict == "" {
					t.Fatalf("fault fired but response neither degraded nor a verdict: %s", raw)
				}
			case http.StatusGatewayTimeout:
				var eb ErrorBody
				if err := json.Unmarshal(raw, &eb); err != nil {
					t.Fatalf("504 with bad body: %s", raw)
				}
				if eb.Error.Kind != "resource_exhausted" || eb.Error.Cause != "interrupt" {
					t.Fatalf("fault surfaced as kind=%q cause=%q, want resource_exhausted/interrupt\n%s",
						eb.Error.Kind, eb.Error.Cause, raw)
				}
			default:
				t.Fatalf("faulted request: unexpected status %d\n%s", status, raw)
			}

			// Disarm; the very next request must succeed from a pristine
			// clone (structural quarantine: faulted clones never return
			// to the pool).
			chaos.SetRate(0)
			var qr QueryResponse
			status, raw = post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, &qr)
			if status != http.StatusOK || qr.Verdict != "FEASIBLE" {
				t.Fatalf("request after disarm: status %d verdict %q\n%s", status, qr.Verdict, raw)
			}
		})
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	checkStatsReconcile(t, &sz)
}

// TestServeShedUnderOverload is the chaos acceptance test, two phases.
// Phase A offers 2× the admission capacity deterministically: the fault
// hook parks in-flight queries on a gate, so the queue fills and every
// request beyond capacity must shed with 429 + Retry-After. Phase B
// releases the gate and storms the server with faults injected at a
// fixed rate: every response must be well-formed (a QueryResponse or a
// typed ErrorBody), the server must keep answering afterwards, and
// statsz must reconcile. Run under -race.
func TestServeShedUnderOverload(t *testing.T) {
	var (
		blocking atomic.Bool  // phase A: park queries on the gate
		faulting atomic.Bool  // phase B: inject faults
		events   atomic.Int64 // fault-point counter (deterministic rate)
	)
	gate := make(chan struct{})
	srv, base := testServer(t, func(c *Config) {
		c.MaxInFlight = 2
		c.QueueDepth = 2
		c.Engine.SetFaultHook(func(sat.FaultEvent, sat.Stats) bool {
			if blocking.Load() {
				<-gate
			}
			if !faulting.Load() {
				return false
			}
			return events.Add(1)%25 == 0 // 4% of fault points trip
		})
	})
	capacity := srv.cfg.MaxInFlight + srv.cfg.QueueDepth

	var (
		mu     sync.Mutex
		counts = map[int]int{}
		bad    []string
	)
	record := func(resp *http.Response, raw []byte) {
		mu.Lock()
		defer mu.Unlock()
		counts[resp.StatusCode]++
		switch resp.StatusCode {
		case http.StatusOK:
			var qr QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil || qr.Mode != "synth" {
				bad = append(bad, fmt.Sprintf("malformed 200: %s", raw))
			}
		case http.StatusTooManyRequests:
			var eb ErrorBody
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Kind != "shed" {
				bad = append(bad, fmt.Sprintf("malformed 429: %s", raw))
			} else if resp.Header.Get("Retry-After") == "" || eb.Error.RetryAfterMS <= 0 {
				bad = append(bad, "429 without Retry-After")
			}
		default:
			var eb ErrorBody
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Kind == "" {
				bad = append(bad, fmt.Sprintf("malformed %d: %s", resp.StatusCode, raw))
			}
		}
	}
	fire := func(wg *sync.WaitGroup) {
		defer wg.Done()
		body, _ := json.Marshal(QueryRequest{Scenario: scInference})
		resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body))
		if err != nil {
			mu.Lock()
			bad = append(bad, fmt.Sprintf("transport: %v", err))
			mu.Unlock()
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		record(resp, raw)
	}

	// Phase A: fill capacity with parked queries, then offer 2× more.
	blocking.Store(true)
	var parked sync.WaitGroup
	for i := 0; i < capacity; i++ {
		parked.Add(1)
		go fire(&parked)
	}
	// Give the parked requests time to occupy the in-flight slots (they
	// block at the solve-entry fault point) and the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() < int64(srv.cfg.MaxInFlight) || srv.queued.Load() < int64(srv.cfg.QueueDepth) {
		if time.Now().After(deadline) {
			t.Fatalf("capacity never filled: in-flight %d queued %d", srv.inFlight.Load(), srv.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	var overflow sync.WaitGroup
	for i := 0; i < capacity; i++ { // 2× offered load
		overflow.Add(1)
		go fire(&overflow)
	}
	overflow.Wait()
	mu.Lock()
	if got := counts[http.StatusTooManyRequests]; got != capacity {
		t.Errorf("at 2x load over full capacity, want %d sheds, got %v", capacity, counts)
	}
	mu.Unlock()
	blocking.Store(false)
	close(gate)
	parked.Wait()

	// Phase B: fault storm at 2× capacity, no gate.
	faulting.Store(true)
	var storm sync.WaitGroup
	for i := 0; i < 2*capacity; i++ {
		storm.Add(1)
		go fire(&storm)
	}
	storm.Wait()
	faulting.Store(false)

	for _, b := range bad {
		t.Error(b)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no successes across both phases: %v", counts)
	}

	// The server is still healthy after the storm.
	var qr QueryResponse
	status, raw := post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, &qr)
	if status != http.StatusOK || qr.Verdict != "FEASIBLE" {
		t.Fatalf("post-storm request: status %d\n%s", status, raw)
	}

	var sz StatsResponse
	get(t, base+"/statsz", &sz)
	checkStatsReconcile(t, &sz)
	m := sz.Modes["synth"]
	if m.Shed == 0 {
		t.Errorf("statsz shows no sheds after overload: %+v", m)
	}
	if want := int64(4*capacity + 1); m.Requests != want {
		t.Errorf("statsz synth requests = %d, want %d", m.Requests, want)
	}
}

// TestServeDrain pins the shutdown contract: during a drain new requests
// get 503 draining, Shutdown returns nil within the deadline, and the
// listener closes.
func TestServeDrain(t *testing.T) {
	s, base := testServer(t, nil)

	// One request proves the server worked before drain.
	status, _ := post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, nil)
	if status != http.StatusOK {
		t.Fatalf("pre-drain request: %d", status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}

	// readyz flipped off and the port no longer accepts queries.
	if _, err := http.Post(base+"/v1/synth", "application/json",
		bytes.NewReader([]byte(`{"scenario":{}}`))); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeSmoke is the end-to-end smoke driven by `make serve-smoke`:
// boot on a random port, one query per mode, healthz + statsz, one
// injected fault, then SIGTERM to the whole process and a clean drain
// through the same signal path the CLI wires up. Race-clean.
func TestServeSmoke(t *testing.T) {
	eng, err := core.New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(3, 0)
	s, err := New(Config{
		Engine:       eng,
		Addr:         "127.0.0.1:0",
		MaxInFlight:  2,
		DrainTimeout: 5 * time.Second,
		Prewarm:      []core.Scenario{{Workloads: []string{"inference_app"}}},
		Chaos:        chaos,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	// One query per mode.
	for _, q := range []struct {
		mode string
		req  QueryRequest
	}{
		{"synth", QueryRequest{Scenario: scInference}},
		{"check", QueryRequest{Scenario: scInference, Design: &DesignJSON{Systems: []string{"homa"}}}},
		{"whatif", QueryRequest{Scenario: scInference, Delta: &DeltaJSON{Context: map[string]bool{"lossless_fabric": false}}}},
		{"enumerate", QueryRequest{Scenario: scInference, Max: 2}},
		{"explain", QueryRequest{Scenario: scInference}},
	} {
		status, raw := post(t, base+"/v1/"+q.mode, q.req, nil)
		var probe map[string]any
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("%s: non-JSON body at status %d: %s", q.mode, status, raw)
		}
		if status != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", q.mode, status, raw)
		}
	}

	// healthz + statsz.
	if st := get(t, base+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}
	var sz StatsResponse
	if st := get(t, base+"/statsz", &sz); st != http.StatusOK {
		t.Fatalf("statsz: %d", st)
	}
	checkStatsReconcile(t, &sz)

	// One injected fault, then recovery.
	chaos.SetEvents(sat.EventSolve)
	chaos.SetRate(1.0)
	status, raw := post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, nil)
	if status != http.StatusGatewayTimeout && status != http.StatusOK {
		t.Fatalf("faulted query: status %d\n%s", status, raw)
	}
	chaos.SetRate(0)
	var qr QueryResponse
	if status, raw = post(t, base+"/v1/synth", QueryRequest{Scenario: scInference}, &qr); status != http.StatusOK {
		t.Fatalf("post-fault query: status %d\n%s", status, raw)
	}

	// SIGTERM the process: the signal context cancels, Run drains and
	// returns nil — the CLI maps that to exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain after SIGTERM not clean: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s of SIGTERM")
	}
}

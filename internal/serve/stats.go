package serve

import (
	"sync"
	"time"
)

// Per-mode request accounting. Every request resolves to exactly one
// outcome, and the outcome counters are bumped together with the
// request total under one mutex at response time — so a /statsz
// snapshot can never observe requests != ok+degraded+shed+errors, even
// mid-flight (requests still being processed are visible in the
// in_flight/queued gauges instead, not in the mode counters).

// outcomeKind classifies how a request ended.
type outcomeKind int

const (
	// outcomeOK: a full-fidelity 200.
	outcomeOK outcomeKind = iota
	// outcomeDegraded: a 200 whose body is budget-degraded but still
	// witnessed (approximate explanation, budget-truncated enumeration).
	outcomeDegraded
	// outcomeShed: rejected by admission control — 429 queue-full or 503
	// draining.
	outcomeShed
	// outcomeError: typed error response — bad request, resource
	// exhaustion before a verdict, client gone, recovered panic.
	outcomeError
)

// latency histogram: exponential buckets, ~100µs base, ×2 per bucket.
// Bucket i covers [base·2^(i-1), base·2^i); the last bucket is open.
const (
	histBuckets = 24
	histBase    = 100 * time.Microsecond
)

func bucketOf(d time.Duration) int {
	if d < histBase {
		return 0
	}
	b := 0
	for v := d / histBase; v > 0 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// bucketUpper is the upper bound of bucket i, used as the reported
// quantile value (a conservative estimate: real latency is at most it).
func bucketUpper(i int) time.Duration {
	return histBase << uint(i)
}

// modeStats accounts one query mode.
type modeStats struct {
	mu       sync.Mutex
	requests int64
	ok       int64
	degraded int64
	shed     int64
	errors   int64
	hist     [histBuckets]int64
	observed int64 // latencies recorded (completed requests; sheds excluded)
}

// record finalizes one request: outcome + latency, atomically with the
// request total. Sheds skip the histogram — their latency measures the
// rejection path, not query service time.
func (m *modeStats) record(outcome outcomeKind, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	switch outcome {
	case outcomeOK:
		m.ok++
	case outcomeDegraded:
		m.degraded++
	case outcomeShed:
		m.shed++
		return
	case outcomeError:
		m.errors++
	}
	m.hist[bucketOf(latency)]++
	m.observed++
}

// quantile reports the upper bound of the bucket holding the q-quantile
// observation. Caller holds mu.
func (m *modeStats) quantile(q float64) time.Duration {
	if m.observed == 0 {
		return 0
	}
	target := int64(q * float64(m.observed))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range m.hist {
		cum += n
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// ModeStatsJSON is the /statsz wire form of one mode's counters.
type ModeStatsJSON struct {
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Degraded int64   `json:"degraded"`
	Shed     int64   `json:"shed"`
	Errors   int64   `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// snapshot returns a consistent copy of the counters.
func (m *modeStats) snapshot() ModeStatsJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ModeStatsJSON{
		Requests: m.requests,
		OK:       m.ok,
		Degraded: m.degraded,
		Shed:     m.shed,
		Errors:   m.errors,
		P50MS:    float64(m.quantile(0.50)) / float64(time.Millisecond),
		P99MS:    float64(m.quantile(0.99)) / float64(time.Millisecond),
	}
}

// serverStats is the full per-server stats set, one modeStats per mode.
type serverStats struct {
	mu    sync.Mutex
	modes map[string]*modeStats
}

func newServerStats() *serverStats {
	return &serverStats{modes: make(map[string]*modeStats)}
}

func (s *serverStats) mode(name string) *modeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modes[name]
	if m == nil {
		m = &modeStats{}
		s.modes[name] = m
	}
	return m
}

func (s *serverStats) snapshot() map[string]ModeStatsJSON {
	s.mu.Lock()
	names := make([]*modeStats, 0, len(s.modes))
	keys := make([]string, 0, len(s.modes))
	for k, m := range s.modes {
		keys = append(keys, k)
		names = append(names, m)
	}
	s.mu.Unlock()
	out := make(map[string]ModeStatsJSON, len(keys))
	for i, k := range keys {
		out[k] = names[i].snapshot()
	}
	return out
}

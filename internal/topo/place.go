package topo

import (
	"fmt"
	"sort"
)

// Demand is a placement request: a named workload needing Cores cores
// spread over the given racks (empty means any racks).
type Demand struct {
	Name  string
	Cores int64
	Racks []string // preferred racks; empty = all
}

// Assignment maps a workload to the cores it received per rack.
type Assignment struct {
	Workload string
	PerRack  map[string]int64
}

// Placement is the result of placing demands onto a topology.
type Placement struct {
	Assignments []Assignment
	// FreeCores is the remaining capacity per rack.
	FreeCores map[string]int64
}

// Place assigns demands to rack capacity first-fit in rack order,
// honouring rack preferences. It fails if any demand cannot be satisfied,
// naming the shortfall — the engine surfaces this as an explanation.
func (t *Topology) Place(demands []Demand) (*Placement, error) {
	free := make(map[string]int64, len(t.racks))
	for _, r := range t.racks {
		free[r] = t.RackCores(r)
	}
	p := &Placement{FreeCores: free}
	for _, d := range demands {
		if d.Cores < 0 {
			return nil, fmt.Errorf("topo: demand %q has negative cores", d.Name)
		}
		racks := d.Racks
		if len(racks) == 0 {
			racks = t.racks
		}
		for _, r := range racks {
			if _, ok := free[r]; !ok {
				return nil, fmt.Errorf("topo: demand %q names unknown rack %q", d.Name, r)
			}
		}
		need := d.Cores
		got := map[string]int64{}
		for _, r := range racks {
			if need == 0 {
				break
			}
			take := free[r]
			if take > need {
				take = need
			}
			if take > 0 {
				free[r] -= take
				got[r] = take
				need -= take
			}
		}
		if need > 0 {
			var avail int64
			for _, r := range racks {
				avail += free[r] + got[r]
			}
			// Roll back partial takes so callers can retry.
			for r, v := range got {
				free[r] += v
			}
			return nil, fmt.Errorf(
				"topo: demand %q needs %d cores but racks %v offer only %d",
				d.Name, d.Cores, racks, avail)
		}
		p.Assignments = append(p.Assignments, Assignment{Workload: d.Name, PerRack: got})
	}
	return p, nil
}

// TotalFreeCores sums remaining capacity over all racks.
func (p *Placement) TotalFreeCores() int64 {
	var total int64
	for _, v := range p.FreeCores {
		total += v
	}
	return total
}

// RacksUsed returns the sorted racks a workload landed on.
func (p *Placement) RacksUsed(workload string) []string {
	for _, a := range p.Assignments {
		if a.Workload == workload {
			out := make([]string, 0, len(a.PerRack))
			for r := range a.PerRack {
				out = append(out, r)
			}
			sort.Strings(out)
			return out
		}
	}
	return nil
}

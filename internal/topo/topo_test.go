package topo

import (
	"strings"
	"testing"
)

func mustLeafSpine(t *testing.T, spines, leaves, perLeaf int) *Topology {
	t.Helper()
	tp, err := NewLeafSpine(spines, leaves, perLeaf, 64)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestLeafSpineShape(t *testing.T) {
	tp := mustLeafSpine(t, 2, 3, 4)
	if got := len(tp.Switches()); got != 5 {
		t.Errorf("switches: got %d, want 5", got)
	}
	if got := len(tp.Servers()); got != 12 {
		t.Errorf("servers: got %d, want 12", got)
	}
	if got := len(tp.Racks()); got != 3 {
		t.Errorf("racks: got %d, want 3", got)
	}
	// Every leaf sees every spine.
	for _, l := range []string{"leaf0", "leaf1", "leaf2"} {
		n := tp.Neighbors(l)
		if len(n) != 2 || n[0] != "spine0" || n[1] != "spine1" {
			t.Errorf("leaf %s neighbours: %v", l, n)
		}
	}
	if tp.RackCores("rack0") != 4*64 {
		t.Errorf("rack cores: got %d", tp.RackCores("rack0"))
	}
	if got := tp.ServersInRack("rack1"); len(got) != 4 {
		t.Errorf("servers in rack: %v", got)
	}
}

func TestLeafSpineInvalid(t *testing.T) {
	if _, err := NewLeafSpine(0, 1, 1, 1); err == nil {
		t.Error("zero spines must fail")
	}
}

func TestFatTreeShape(t *testing.T) {
	k := 4
	tp, err := NewFatTree(k, 32)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 core, 8 agg, 8 edge switches; 16 servers.
	if got := len(tp.Switches()); got != 20 {
		t.Errorf("switches: got %d, want 20", got)
	}
	if got := len(tp.Servers()); got != 16 {
		t.Errorf("servers: got %d, want 16", got)
	}
	if _, err := NewFatTree(3, 1); err == nil {
		t.Error("odd arity must fail")
	}
	if _, err := NewFatTree(0, 1); err == nil {
		t.Error("zero arity must fail")
	}
}

func TestUpDownPathsSameLeaf(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 2)
	paths, err := tp.UpDownPaths("srv-0-0", "srv-0-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 1 || paths[0][0] != "leaf0" {
		t.Errorf("same-leaf path: %v", paths)
	}
}

func TestUpDownPathsCrossLeaf(t *testing.T) {
	tp := mustLeafSpine(t, 3, 2, 1)
	paths, err := tp.UpDownPaths("srv-0-0", "srv-1-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("want one path per spine, got %v", paths)
	}
	for _, p := range paths {
		if len(p) != 3 || p[0] != "leaf0" || p[2] != "leaf1" || !strings.HasPrefix(p[1], "spine") {
			t.Errorf("malformed path %v", p)
		}
	}
}

func TestUpDownPathsFatTreeCrossPod(t *testing.T) {
	tp, err := NewFatTree(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := tp.UpDownPaths("srv-0-0-0", "srv-1-0-0")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod in k=4 fat tree: 4 paths (2 agg × 2 core... per agg pair).
	if len(paths) != 4 {
		t.Fatalf("cross-pod paths: got %d (%v)", len(paths), paths)
	}
	for _, p := range paths {
		if len(p) != 5 {
			t.Errorf("cross-pod path length: %v", p)
		}
		if !strings.HasPrefix(p[2], "core") {
			t.Errorf("cross-pod must traverse core: %v", p)
		}
	}
	// Same-pod different edge: 2 paths via the 2 aggs, length 3.
	paths, err = tp.UpDownPaths("srv-0-0-0", "srv-0-1-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("same-pod paths: got %d", len(paths))
	}
	for _, p := range paths {
		if len(p) != 3 || !strings.HasPrefix(p[1], "agg0-") {
			t.Errorf("same-pod path must use lowest common tier: %v", p)
		}
	}
}

func TestUpDownPathErrors(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 1)
	if _, err := tp.UpDownPaths("ghost", "srv-0-0"); err == nil {
		t.Error("unknown src must fail")
	}
	if _, err := tp.UpDownPaths("srv-0-0", "ghost"); err == nil {
		t.Error("unknown dst must fail")
	}
}

func TestECMPDeterministic(t *testing.T) {
	tp := mustLeafSpine(t, 4, 2, 1)
	p1, err := tp.ECMPPath("srv-0-0", "srv-1-0", 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := tp.ECMPPath("srv-0-0", "srv-1-0", 7)
	if strings.Join(p1, ",") != strings.Join(p2, ",") {
		t.Error("same flow must hash to same path")
	}
	// Different flow IDs should spread across spines eventually.
	seen := map[string]bool{}
	for f := uint64(0); f < 64; f++ {
		p, _ := tp.ECMPPath("srv-0-0", "srv-1-0", f)
		seen[p[1]] = true
	}
	if len(seen) < 2 {
		t.Errorf("ECMP never spread: %v", seen)
	}
}

func TestPFCNoDeadlockWithUpDown(t *testing.T) {
	for _, build := range []func() *Topology{
		func() *Topology { return mustLeafSpine(t, 2, 3, 2) },
		func() *Topology { return mustLeafSpine(t, 4, 8, 4) },
		func() *Topology {
			tp, err := NewFatTree(4, 32)
			if err != nil {
				t.Fatal(err)
			}
			return tp
		},
	} {
		rep := build().PFCDeadlockCheck(false)
		if rep.Deadlock {
			t.Errorf("up-down routing must be deadlock-free: %s", rep)
		}
		if rep.Edges == 0 {
			t.Error("dependency graph should not be empty")
		}
	}
}

func TestPFCDeadlockWithFlooding(t *testing.T) {
	// The Microsoft incident: flooding creates down-up turns and cycles.
	// Needs at least 2 spines and 2 leaves.
	tp := mustLeafSpine(t, 2, 2, 1)
	rep := tp.PFCDeadlockCheck(true)
	if !rep.Deadlock {
		t.Fatalf("flooding must create a cyclic buffer dependency: %s", rep)
	}
	if len(rep.Cycle) < 3 {
		t.Errorf("cycle witness too short: %v", rep.Cycle)
	}
	if rep.Cycle[0] != rep.Cycle[len(rep.Cycle)-1] {
		t.Error("cycle witness must close")
	}
	// The witness must be a real cycle: each consecutive pair must be a
	// valid segment dependency (b1.At == b2.From).
	for i := 0; i+1 < len(rep.Cycle); i++ {
		if rep.Cycle[i].At != rep.Cycle[i+1].From {
			t.Errorf("cycle step %d broken: %v -> %v", i, rep.Cycle[i], rep.Cycle[i+1])
		}
	}
	if !strings.Contains(rep.String(), "DEADLOCK") {
		t.Error("report string should mention deadlock")
	}
}

func TestPFCFloodingSingleSpineSafe(t *testing.T) {
	// With a single spine there is no alternative up-port, so flooding
	// cannot create a down-up-down loop among switches.
	tp := mustLeafSpine(t, 1, 3, 1)
	rep := tp.PFCDeadlockCheck(true)
	if rep.Deadlock {
		t.Errorf("single-spine flooding should be safe: %s", rep)
	}
}

func TestFloodSegmentsIncludeDownUpTurn(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 1)
	segs := tp.FloodSegments()
	found := false
	for _, s := range segs {
		if s[0] == "spine0" && s[1] == "leaf0" && s[2] == "spine1" {
			found = true
		}
	}
	if !found {
		t.Error("flooding must include spine->leaf->spine turns")
	}
}

func TestBufferGraphDirect(t *testing.T) {
	g := NewBufferGraph()
	g.AddSegment("a", "b", "c")
	g.AddSegment("b", "c", "a")
	g.AddSegment("c", "a", "b")
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("triangle must cycle")
	}
	if g.Size() != 3 {
		t.Errorf("size: got %d, want 3", g.Size())
	}
	g2 := NewBufferGraph()
	g2.AddSegment("a", "b", "c")
	g2.AddSegment("b", "c", "d")
	if g2.FindCycle() != nil {
		t.Error("chain must be acyclic")
	}
	if !strings.Contains((Buffer{From: "x", At: "y"}).String(), "x->y") {
		t.Error("Buffer.String wrong")
	}
}

func TestPlaceBasic(t *testing.T) {
	tp := mustLeafSpine(t, 2, 3, 2) // 3 racks × 128 cores
	p, err := tp.Place([]Demand{
		{Name: "app1", Cores: 100},
		{Name: "app2", Cores: 150, Racks: []string{"rack1", "rack2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TotalFreeCores(); got != 3*128-250 {
		t.Errorf("free cores: got %d", got)
	}
	racks := p.RacksUsed("app2")
	if len(racks) == 0 {
		t.Fatal("app2 not placed")
	}
	for _, r := range racks {
		if r == "rack0" {
			t.Error("app2 must respect rack preference")
		}
	}
	if p.RacksUsed("ghost") != nil {
		t.Error("unknown workload must return nil")
	}
}

func TestPlaceInsufficient(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 1) // 2 racks × 64 cores
	_, err := tp.Place([]Demand{{Name: "big", Cores: 1000}})
	if err == nil || !strings.Contains(err.Error(), "offer only") {
		t.Errorf("want capacity error, got %v", err)
	}
	if _, err := tp.Place([]Demand{{Name: "neg", Cores: -1}}); err == nil {
		t.Error("negative demand must fail")
	}
	if _, err := tp.Place([]Demand{{Name: "x", Cores: 1, Racks: []string{"nope"}}}); err == nil {
		t.Error("unknown rack must fail")
	}
}

func TestPlaceRollbackOnFailure(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 1) // 128 cores total
	_, err := tp.Place([]Demand{
		{Name: "a", Cores: 64},
		{Name: "b", Cores: 100},
	})
	if err == nil {
		t.Fatal("want failure")
	}
	// After failure, a fresh placement of a feasible set must succeed
	// (Place must not mutate the topology).
	if _, err := tp.Place([]Demand{{Name: "c", Cores: 128}}); err != nil {
		t.Errorf("topology capacity must be unchanged: %v", err)
	}
}

func TestTierString(t *testing.T) {
	if TierLeaf.String() != "leaf" || TierSpine.String() != "spine" || TierCore.String() != "core" {
		t.Error("tier names wrong")
	}
}

func TestServersAtLeaf(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 3)
	if got := tp.ServersAtLeaf("leaf0"); len(got) != 3 {
		t.Errorf("ServersAtLeaf: %v", got)
	}
	if tp.Switch("leaf0") == nil || tp.Switch("nope") != nil {
		t.Error("Switch lookup wrong")
	}
	if tp.Server("srv-0-0") == nil || tp.Server("nope") != nil {
		t.Error("Server lookup wrong")
	}
}

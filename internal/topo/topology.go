// Package topo provides the network-topology substrate: Clos (leaf-spine
// and fat-tree) builders, up-down and ECMP routing, L2 flooding behaviour,
// buffer-dependency graphs, and PFC deadlock detection.
//
// It exists to ground the paper's motivating incident (§2.2, §3.4): PFC
// requires an absence of cyclic buffer dependencies; Microsoft's up-down
// routing guaranteed acyclicity, but Ethernet flooding broke the routing
// invariant and deadlocked the production network [Guo et al., SIGCOMM'16].
// The expert rule the paper proposes ("PFC cannot be used with any flooding
// algorithm") is checkable here against the actual graph-theoretic
// condition, which is how the reproduction validates the rule.
package topo

import (
	"fmt"
	"sort"
)

// Tier is a switch's layer in the Clos.
type Tier int

// Switch tiers, bottom-up.
const (
	TierLeaf Tier = iota
	TierSpine
	TierCore
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierLeaf:
		return "leaf"
	case TierSpine:
		return "spine"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Switch is a switching element.
type Switch struct {
	Name string
	Tier Tier
	// Pod groups fat-tree leaf/spine switches; -1 for core or leaf-spine.
	Pod int
}

// Server is an end host attached to a leaf.
type Server struct {
	Name string
	Leaf string // leaf switch name
	Rack string // rack name (one rack per leaf)
	// Cores available for system/workload placement.
	Cores int64
}

// Topology is an immutable Clos network. Build with NewLeafSpine or
// NewFatTree.
type Topology struct {
	switches map[string]*Switch
	servers  map[string]*Server
	// adj[u] lists neighbours of switch u (switch names only).
	adj map[string][]string
	// serversAt[leaf] lists server names attached to a leaf.
	serversAt map[string][]string
	racks     []string
}

// NewLeafSpine builds a two-tier Clos: every leaf connects to every spine,
// serversPerLeaf servers per leaf, one rack per leaf, coresPerServer cores
// each.
func NewLeafSpine(spines, leaves, serversPerLeaf int, coresPerServer int64) (*Topology, error) {
	if spines < 1 || leaves < 1 || serversPerLeaf < 0 {
		return nil, fmt.Errorf("topo: invalid leaf-spine shape %d/%d/%d", spines, leaves, serversPerLeaf)
	}
	t := newTopology()
	for s := 0; s < spines; s++ {
		t.addSwitch(&Switch{Name: fmt.Sprintf("spine%d", s), Tier: TierSpine, Pod: -1})
	}
	for l := 0; l < leaves; l++ {
		leaf := fmt.Sprintf("leaf%d", l)
		t.addSwitch(&Switch{Name: leaf, Tier: TierLeaf, Pod: -1})
		for s := 0; s < spines; s++ {
			t.link(leaf, fmt.Sprintf("spine%d", s))
		}
		rack := fmt.Sprintf("rack%d", l)
		t.racks = append(t.racks, rack)
		for h := 0; h < serversPerLeaf; h++ {
			t.addServer(&Server{
				Name:  fmt.Sprintf("srv-%d-%d", l, h),
				Leaf:  leaf,
				Rack:  rack,
				Cores: coresPerServer,
			})
		}
	}
	return t, nil
}

// NewFatTree builds a k-ary fat tree (k even): k pods, each with k/2 edge
// (leaf) and k/2 aggregation (spine) switches, (k/2)² core switches, and
// k/2 servers per edge switch.
func NewFatTree(k int, coresPerServer int64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and ≥ 2, got %d", k)
	}
	t := newTopology()
	half := k / 2
	// Core switches, grouped: core[g][i] connects to aggregation g of
	// each pod.
	for g := 0; g < half; g++ {
		for i := 0; i < half; i++ {
			t.addSwitch(&Switch{Name: fmt.Sprintf("core%d-%d", g, i), Tier: TierCore, Pod: -1})
		}
	}
	rackID := 0
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			agg := fmt.Sprintf("agg%d-%d", p, a)
			t.addSwitch(&Switch{Name: agg, Tier: TierSpine, Pod: p})
			for i := 0; i < half; i++ {
				t.link(agg, fmt.Sprintf("core%d-%d", a, i))
			}
		}
		for e := 0; e < half; e++ {
			edge := fmt.Sprintf("edge%d-%d", p, e)
			t.addSwitch(&Switch{Name: edge, Tier: TierLeaf, Pod: p})
			for a := 0; a < half; a++ {
				t.link(edge, fmt.Sprintf("agg%d-%d", p, a))
			}
			rack := fmt.Sprintf("rack%d", rackID)
			rackID++
			t.racks = append(t.racks, rack)
			for h := 0; h < half; h++ {
				t.addServer(&Server{
					Name:  fmt.Sprintf("srv-%d-%d-%d", p, e, h),
					Leaf:  edge,
					Rack:  rack,
					Cores: coresPerServer,
				})
			}
		}
	}
	return t, nil
}

func newTopology() *Topology {
	return &Topology{
		switches:  make(map[string]*Switch),
		servers:   make(map[string]*Server),
		adj:       make(map[string][]string),
		serversAt: make(map[string][]string),
	}
}

func (t *Topology) addSwitch(s *Switch) { t.switches[s.Name] = s }

func (t *Topology) addServer(s *Server) {
	t.servers[s.Name] = s
	t.serversAt[s.Leaf] = append(t.serversAt[s.Leaf], s.Name)
}

func (t *Topology) link(a, b string) {
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

// Switches returns all switch names, sorted.
func (t *Topology) Switches() []string {
	out := make([]string, 0, len(t.switches))
	for n := range t.switches {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Servers returns all server names, sorted.
func (t *Topology) Servers() []string {
	out := make([]string, 0, len(t.servers))
	for n := range t.servers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Racks returns rack names in construction order.
func (t *Topology) Racks() []string { return append([]string(nil), t.racks...) }

// Switch returns the named switch, or nil.
func (t *Topology) Switch(name string) *Switch { return t.switches[name] }

// Server returns the named server, or nil.
func (t *Topology) Server(name string) *Server { return t.servers[name] }

// Neighbors returns the switch neighbours of a switch, sorted.
func (t *Topology) Neighbors(name string) []string {
	out := append([]string(nil), t.adj[name]...)
	sort.Strings(out)
	return out
}

// ServersAtLeaf returns server names attached to a leaf switch.
func (t *Topology) ServersAtLeaf(leaf string) []string {
	return append([]string(nil), t.serversAt[leaf]...)
}

// ServersInRack returns server names in a rack, sorted.
func (t *Topology) ServersInRack(rack string) []string {
	var out []string
	for n, s := range t.servers {
		if s.Rack == rack {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// RackCores returns the total core count of a rack.
func (t *Topology) RackCores(rack string) int64 {
	var total int64
	for _, s := range t.servers {
		if s.Rack == rack {
			total += s.Cores
		}
	}
	return total
}

// upNeighbors returns neighbours one tier up.
func (t *Topology) upNeighbors(sw string) []string {
	self := t.switches[sw]
	var out []string
	for _, n := range t.adj[sw] {
		if t.switches[n].Tier == self.Tier+1 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// downNeighbors returns neighbours one tier down.
func (t *Topology) downNeighbors(sw string) []string {
	self := t.switches[sw]
	var out []string
	for _, n := range t.adj[sw] {
		if t.switches[n].Tier == self.Tier-1 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

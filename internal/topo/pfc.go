package topo

import (
	"fmt"
	"sort"
	"strings"
)

// Buffer identifies an ingress buffer: the buffer at switch At holding
// frames that arrived from neighbour From. PFC backpressure pauses the
// upstream transmitter of exactly this buffer.
type Buffer struct {
	From string
	At   string
}

// String renders the buffer as "from->at".
func (b Buffer) String() string { return b.From + "->" + b.At }

// BufferGraph is a buffer-dependency graph: an edge b1 → b2 means traffic
// occupying b1 may need b2 to drain first (the next hop's ingress buffer),
// so PFC pause on b2 can propagate to b1. A cycle means a potential PFC
// deadlock [Guo et al., SIGCOMM'16].
type BufferGraph struct {
	edges map[Buffer]map[Buffer]bool
}

// NewBufferGraph returns an empty buffer-dependency graph.
func NewBufferGraph() *BufferGraph {
	return &BufferGraph{edges: make(map[Buffer]map[Buffer]bool)}
}

// AddSegment records the dependency induced by a frame traversing the
// three-hop switch segment in → via → out: the ingress buffer (in→via)
// depends on the ingress buffer (via→out).
func (g *BufferGraph) AddSegment(in, via, out string) {
	b1 := Buffer{From: in, At: via}
	b2 := Buffer{From: via, At: out}
	if g.edges[b1] == nil {
		g.edges[b1] = make(map[Buffer]bool)
	}
	g.edges[b1][b2] = true
}

// AddSegments records many segments.
func (g *BufferGraph) AddSegments(segs [][3]string) {
	for _, s := range segs {
		g.AddSegment(s[0], s[1], s[2])
	}
}

// Size returns the number of dependency edges.
func (g *BufferGraph) Size() int {
	n := 0
	for _, m := range g.edges {
		n += len(m)
	}
	return n
}

// FindCycle returns a dependency cycle as an ordered buffer list (first
// element repeated at the end), or nil if the graph is acyclic.
func (g *BufferGraph) FindCycle() []Buffer {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Buffer]int)
	parent := make(map[Buffer]Buffer)

	// Deterministic iteration order for reproducible witnesses.
	starts := make([]Buffer, 0, len(g.edges))
	for b := range g.edges {
		starts = append(starts, b)
	}
	sort.Slice(starts, func(i, j int) bool {
		return starts[i].String() < starts[j].String()
	})

	var cycleStart, cycleEnd Buffer
	found := false

	var dfs func(b Buffer) bool
	dfs = func(b Buffer) bool {
		color[b] = gray
		succs := make([]Buffer, 0, len(g.edges[b]))
		for s := range g.edges[b] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].String() < succs[j].String() })
		for _, s := range succs {
			switch color[s] {
			case white:
				parent[s] = b
				if dfs(s) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = s, b
				found = true
				return true
			}
		}
		color[b] = black
		return false
	}
	for _, b := range starts {
		if color[b] == white && dfs(b) {
			break
		}
	}
	if !found {
		return nil
	}
	// Reconstruct the cycle: walk tree parents from the back-edge source
	// up to the cycle start, then emit in forward order, closing the loop.
	var back []Buffer
	for at := cycleEnd; at != cycleStart; at = parent[at] {
		back = append(back, at)
	}
	cycle := make([]Buffer, 0, len(back)+2)
	cycle = append(cycle, cycleStart)
	for i := len(back) - 1; i >= 0; i-- {
		cycle = append(cycle, back[i])
	}
	return append(cycle, cycleStart)
}

// DeadlockReport is the outcome of a PFC safety analysis.
type DeadlockReport struct {
	// Deadlock reports whether a cyclic buffer dependency exists.
	Deadlock bool
	// Cycle is a witness (first buffer repeated last) when Deadlock.
	Cycle []Buffer
	// Edges is the dependency-graph size analysed.
	Edges int
	// FloodingEnabled records the analysed configuration.
	FloodingEnabled bool
}

// String summarizes the report.
func (r DeadlockReport) String() string {
	if !r.Deadlock {
		return fmt.Sprintf("no PFC deadlock (%d dependency edges, flooding=%v)",
			r.Edges, r.FloodingEnabled)
	}
	parts := make([]string, len(r.Cycle))
	for i, b := range r.Cycle {
		parts[i] = b.String()
	}
	return fmt.Sprintf("PFC DEADLOCK (%d dependency edges, flooding=%v): %s",
		r.Edges, r.FloodingEnabled, strings.Join(parts, " => "))
}

// PFCDeadlockCheck analyses the topology under up-down routing, optionally
// with L2 flooding enabled, and reports whether PFC could deadlock. This
// is the ground-truth check that the paper's expert rule ("PFC cannot be
// used with any flooding algorithm") abstracts.
func (t *Topology) PFCDeadlockCheck(floodingEnabled bool) DeadlockReport {
	g := NewBufferGraph()
	g.AddSegments(t.RoutedSegments())
	if floodingEnabled {
		g.AddSegments(t.FloodSegments())
	}
	cycle := g.FindCycle()
	return DeadlockReport{
		Deadlock:        cycle != nil,
		Cycle:           cycle,
		Edges:           g.Size(),
		FloodingEnabled: floodingEnabled,
	}
}

package topo

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// UpDownPaths returns every valid up-down (valley-free) switch path from
// the leaf of src to the leaf of dst: the packet climbs zero or more
// tiers, crosses at a single common ancestor tier, then descends. Each
// path is a sequence of switch names starting at src's leaf and ending at
// dst's leaf. Same-leaf pairs yield the single one-element path.
func (t *Topology) UpDownPaths(src, dst string) ([][]string, error) {
	s, ok := t.servers[src]
	if !ok {
		return nil, fmt.Errorf("topo: unknown server %q", src)
	}
	d, ok := t.servers[dst]
	if !ok {
		return nil, fmt.Errorf("topo: unknown server %q", dst)
	}
	if s.Leaf == d.Leaf {
		return [][]string{{s.Leaf}}, nil
	}
	// Upward cones from both leaves, tier by tier; when the cones
	// intersect at a tier, splice paths at each common switch.
	type cone map[string][][]string // switch -> paths from leaf to it
	up := func(from string) []cone {
		cones := []cone{{from: {{from}}}}
		cur := cones[0]
		for {
			next := cone{}
			for sw, paths := range cur {
				for _, u := range t.upNeighbors(sw) {
					for _, p := range paths {
						np := append(append([]string(nil), p...), u)
						next[u] = append(next[u], np)
					}
				}
			}
			if len(next) == 0 {
				break
			}
			cones = append(cones, next)
			cur = next
		}
		return cones
	}
	sc, dc := up(s.Leaf), up(d.Leaf)
	var out [][]string
	tiers := len(sc)
	if len(dc) < tiers {
		tiers = len(dc)
	}
	for tier := 1; tier < tiers; tier++ {
		// Deterministic order over common ancestors.
		common := make([]string, 0, len(sc[tier]))
		for sw := range sc[tier] {
			if _, ok := dc[tier][sw]; ok {
				common = append(common, sw)
			}
		}
		sort.Strings(common)
		for _, sw := range common {
			sPaths, dPaths := sc[tier][sw], dc[tier][sw]
			for _, sp := range sPaths {
				for _, dp := range dPaths {
					path := append([]string(nil), sp...)
					for i := len(dp) - 2; i >= 0; i-- {
						path = append(path, dp[i])
					}
					out = append(out, path)
				}
			}
		}
		if len(out) > 0 {
			// Up-down routing uses the lowest common ancestor tier.
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topo: no up-down path from %q to %q", src, dst)
	}
	return out, nil
}

// ECMPPath deterministically picks one of the up-down paths by hashing the
// flow 5-tuple surrogate (src, dst, flowID), mimicking ECMP.
func (t *Topology) ECMPPath(src, dst string, flowID uint64) ([]string, error) {
	paths, err := t.UpDownPaths(src, dst)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", src, dst, flowID)
	return paths[h.Sum64()%uint64(len(paths))], nil
}

// FloodSegments returns the three-hop switch segments [in, via, out]
// traversed by L2 flooding: a flooded frame arriving at switch via from in
// is forwarded out every other port, including ports of the same or upper
// tier — the down-up turns that break the up-down invariant.
func (t *Topology) FloodSegments() [][3]string {
	var segs [][3]string
	for _, via := range t.Switches() {
		neigh := t.Neighbors(via)
		for _, in := range neigh {
			for _, out := range neigh {
				if in == out {
					continue
				}
				segs = append(segs, [3]string{in, via, out})
			}
		}
	}
	return segs
}

// RoutedSegments returns the three-hop segments induced by up-down routing
// between every pair of distinct leaves (with every ECMP choice), plus the
// two-hop ingress/egress segments represented with empty endpoints. These
// feed the buffer-dependency graph.
func (t *Topology) RoutedSegments() [][3]string {
	var segs [][3]string
	leaves := t.leafNames()
	seen := map[[3]string]bool{}
	for _, l1 := range leaves {
		srvs1 := t.serversAt[l1]
		if len(srvs1) == 0 {
			continue
		}
		for _, l2 := range leaves {
			if l1 == l2 {
				continue
			}
			srvs2 := t.serversAt[l2]
			if len(srvs2) == 0 {
				continue
			}
			paths, err := t.UpDownPaths(srvs1[0], srvs2[0])
			if err != nil {
				continue
			}
			for _, p := range paths {
				for i := 0; i+2 < len(p); i++ {
					seg := [3]string{p[i], p[i+1], p[i+2]}
					if !seen[seg] {
						seen[seg] = true
						segs = append(segs, seg)
					}
				}
			}
		}
	}
	return segs
}

func (t *Topology) leafNames() []string {
	var out []string
	for _, n := range t.Switches() {
		if t.switches[n].Tier == TierLeaf {
			out = append(out, n)
		}
	}
	return out
}

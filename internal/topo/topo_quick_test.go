package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickUpDownPathsAreValleyFree checks the routing invariant the PFC
// analysis rests on: every produced path climbs tiers monotonically, then
// descends monotonically — no valley (down-then-up) anywhere.
func TestQuickUpDownPathsAreValleyFree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tp *Topology
		var err error
		if r.Intn(2) == 0 {
			tp, err = NewLeafSpine(1+r.Intn(4), 2+r.Intn(4), 1, 8)
		} else {
			tp, err = NewFatTree(4, 8)
		}
		if err != nil {
			return false
		}
		servers := tp.Servers()
		src := servers[r.Intn(len(servers))]
		dst := servers[r.Intn(len(servers))]
		if src == dst {
			return true
		}
		paths, err := tp.UpDownPaths(src, dst)
		if err != nil {
			return false
		}
		for _, p := range paths {
			descending := false
			for i := 1; i < len(p); i++ {
				prev, cur := tp.Switch(p[i-1]).Tier, tp.Switch(p[i]).Tier
				switch {
				case cur == prev+1: // going up
					if descending {
						return false // valley!
					}
				case cur == prev-1: // going down
					descending = true
				default:
					return false // non-adjacent tier hop
				}
			}
			// Endpoints must be the right leaves.
			if p[0] != tp.Server(src).Leaf || p[len(p)-1] != tp.Server(dst).Leaf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlacementConservation checks that Place neither loses nor
// invents capacity: granted cores per workload equal its demand, and
// free+granted equals total.
func TestQuickPlacementConservation(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tp, err := NewLeafSpine(2, 2+r.Intn(4), 1+r.Intn(4), int64(8+r.Intn(64)))
		if err != nil {
			return false
		}
		var total int64
		for _, rack := range tp.Racks() {
			total += tp.RackCores(rack)
		}
		var demands []Demand
		var wanted int64
		for i := 0; i < 1+r.Intn(4); i++ {
			c := int64(r.Intn(int(total/2) + 1))
			demands = append(demands, Demand{Name: string(rune('a' + i)), Cores: c})
			wanted += c
		}
		p, err := tp.Place(demands)
		if err != nil {
			// Unconstrained demands can be split arbitrarily, so Place
			// may only fail when aggregate demand exceeds capacity.
			return wanted > total
		}
		var granted int64
		for _, a := range p.Assignments {
			var got int64
			for _, v := range a.PerRack {
				got += v
			}
			// Each workload must receive exactly its demand.
			for _, d := range demands {
				if d.Name == a.Workload && got != d.Cores {
					return false
				}
			}
			granted += got
		}
		return granted+p.TotalFreeCores() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickFloodingSupersetOfRouting checks a monotonicity property the
// deadlock experiment relies on: the flooding dependency graph contains
// every routed dependency, so enabling flooding can only add cycles,
// never remove them.
func TestQuickFloodingMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tp, err := NewLeafSpine(1+r.Intn(3), 2+r.Intn(3), 1, 8)
		if err != nil {
			return false
		}
		plain := tp.PFCDeadlockCheck(false)
		flooded := tp.PFCDeadlockCheck(true)
		if plain.Deadlock && !flooded.Deadlock {
			return false // flooding removed a deadlock: impossible
		}
		return flooded.Edges >= plain.Edges
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package kb

import (
	"encoding/json"
	"testing"

	"netarch/internal/logic"
)

func TestExprConstructors(t *testing.T) {
	e := Implies(And(SystemAtom("pfc"), CtxAtom("flooding")), FalseExpr())
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((system:pfc & ctx:flooding) -> false)" {
		t.Errorf("String: got %q", got)
	}
	if CapAtom(KindNIC, CapECN).Atom != "cap:nic:ECN" {
		t.Error("CapAtom wrong")
	}
	if HwAtom("x").Atom != "hw:x" || PropAtom("p").Atom != "prop:p" {
		t.Error("atom constructors wrong")
	}
}

func TestExprValidateErrors(t *testing.T) {
	bad := []Expr{
		{Op: "atom"}, // empty atom
		{Op: "atom", Atom: "a", Args: []Expr{{}}}, // atom with args
		{Op: "not"},                              // wrong arity
		{Op: "implies", Args: []Expr{Atom("a")}}, // wrong arity
		{Op: "nand", Args: nil},                  // unknown op
		{Op: "true", Atom: "x"},                  // decorated constant
		And(Atom("a"), Expr{Op: "bogus"}),        // nested failure
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d (%v): expected error", i, e)
		}
	}
}

func TestExprCompileSemantics(t *testing.T) {
	vo := logic.NewVocabulary()
	resolve := vo.Get

	cases := []struct {
		expr   Expr
		assign map[string]bool
		want   bool
	}{
		{Implies(CtxAtom("a"), CtxAtom("b")), map[string]bool{"ctx:a": true, "ctx:b": false}, false},
		{Implies(CtxAtom("a"), CtxAtom("b")), map[string]bool{"ctx:a": false}, true},
		{Iff(CtxAtom("a"), CtxAtom("b")), map[string]bool{"ctx:a": true, "ctx:b": true}, true},
		{Iff(CtxAtom("a"), CtxAtom("b")), map[string]bool{"ctx:a": true}, false},
		{And(), nil, true},
		{Or(), nil, false},
		{TrueExpr(), nil, true},
		{FalseExpr(), nil, false},
		{Not(CtxAtom("a")), nil, true},
	}
	for i, c := range cases {
		f, err := c.expr.Compile(resolve)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assign := map[logic.Var]bool{}
		for name, v := range c.assign {
			assign[vo.Get(name)] = v
		}
		if got := f.Eval(assign); got != c.want {
			t.Errorf("case %d (%v): got %v, want %v", i, c.expr, got, c.want)
		}
	}
}

func TestExprCompileRejectsInvalid(t *testing.T) {
	vo := logic.NewVocabulary()
	if _, err := (Expr{Op: "nope"}).Compile(vo.Get); err == nil {
		t.Error("invalid expr must fail to compile")
	}
}

func TestExprAtoms(t *testing.T) {
	e := And(SystemAtom("a"), Or(CtxAtom("b"), Not(SystemAtom("a"))))
	atoms := e.Atoms(nil)
	if len(atoms) != 3 {
		t.Fatalf("Atoms: got %v", atoms)
	}
}

func TestExprJSON(t *testing.T) {
	e := Implies(CtxAtom("pfc_enabled"), Not(CtxAtom("flooding_enabled")))
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Expr
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != e.String() {
		t.Errorf("JSON roundtrip: %q vs %q", back.String(), e.String())
	}
}

func TestConditionExpr(t *testing.T) {
	pos := ConditionExpr(Condition{Atom: "x", Value: true})
	if pos.String() != "ctx:x" {
		t.Errorf("got %q", pos.String())
	}
	neg := ConditionExpr(Condition{Atom: "x", Value: false})
	if neg.String() != "!(ctx:x)" {
		t.Errorf("got %q", neg.String())
	}
}

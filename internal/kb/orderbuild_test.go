package kb

import (
	"strings"
	"testing"

	"netarch/internal/logic"
)

func guardedOrderSpec() OrderSpec {
	g := CtxAtom("fast")
	return OrderSpec{
		Dimension: "quality",
		Edges: []OrderEdge{
			{Better: "a", Worse: "b", Note: "always"},
			{Better: "b", Worse: "c", Guard: &g, Note: "only when fast"},
		},
		Equals: []OrderEq{
			{A: "c", B: "d", Guard: &g},
		},
	}
}

func TestOrderSpecBuild(t *testing.T) {
	spec := guardedOrderSpec()
	vo := logic.NewVocabulary()
	g, err := spec.Build(vo)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dimension() != "quality" || len(g.Edges()) != 2 || len(g.Equivalences()) != 1 {
		t.Errorf("built graph wrong: %d edges %d equals", len(g.Edges()), len(g.Equivalences()))
	}
}

func TestOrderSpecBuildBadGuard(t *testing.T) {
	bad := Expr{Op: "bogus"}
	spec := OrderSpec{
		Dimension: "d",
		Edges:     []OrderEdge{{Better: "a", Worse: "b", Guard: &bad}},
	}
	if _, err := spec.Build(logic.NewVocabulary()); err == nil {
		t.Error("bad guard must fail Build")
	}
	specEq := OrderSpec{
		Dimension: "d",
		Equals:    []OrderEq{{A: "a", B: "b", Guard: &bad}},
	}
	if _, err := specEq.Build(logic.NewVocabulary()); err == nil {
		t.Error("bad equal guard must fail Build")
	}
}

func TestOrderSpecResolveWithContext(t *testing.T) {
	spec := guardedOrderSpec()
	slow, err := spec.Resolve(nil, "island")
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Better("a", "b") || slow.Better("b", "c") {
		t.Error("guard must be inactive without the atom")
	}
	if slow.Equal("c", "d") {
		t.Error("guarded equal must be inactive")
	}
	if !slow.Comparable("a", "b") || slow.Comparable("island", "a") {
		t.Error("extra node must appear, unrelated")
	}

	fast, err := spec.Resolve(map[string]bool{"fast": true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Better("a", "c") {
		t.Error("transitive chain must activate under the atom")
	}
	if !fast.Equal("c", "d") {
		t.Error("guarded equal must activate")
	}
}

func TestOrderSpecDOT(t *testing.T) {
	spec := guardedOrderSpec()
	dot, err := spec.DOT("red3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", `"a" -> "b"`, "ctx:fast", `color="red3"`, "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	bad := Expr{Op: "bogus"}
	broken := OrderSpec{Dimension: "d", Edges: []OrderEdge{{Better: "a", Worse: "b", Guard: &bad}}}
	if _, err := broken.DOT(""); err == nil {
		t.Error("bad guard must fail DOT")
	}
}

// Package kb defines the knowledge model of the lightweight reasoning
// framework: encodings of deployable systems, hardware components, and
// application workloads, plus free-form predicate-logic rules and
// conditional partial orders ("rules of thumb").
//
// The model follows the paper's design decisions (§3):
//
//   - Broad but shallow: a system encoding says what the system solves and
//     what it needs, never how it works (Listing 2).
//   - Quantitative facts are limited to the easily-characterized ones —
//     core counts, memory, ports, bandwidth (§3.1).
//   - Performance comparisons are partial orders, not numbers (§3.2,
//     Figure 1).
//   - Everything is serializable so encodings can be crowd-sourced,
//     checked, and diffed (§3.3, §4).
package kb

import (
	"fmt"
	"sort"
)

// Role is a deployment slot a system can fill. The paper's prototype spans
// seven roles (§5.1).
type Role string

// The seven roles of the paper's prototype (§5.1).
const (
	RoleNetworkStack      Role = "network_stack"
	RoleCongestionControl Role = "congestion_control"
	RoleMonitoring        Role = "monitoring"
	RoleFirewall          Role = "firewall"
	RoleVirtualSwitch     Role = "virtual_switch"
	RoleLoadBalancer      Role = "load_balancer"
	RoleTransport         Role = "transport"
)

// Roles lists every known role in canonical order.
func Roles() []Role {
	return []Role{
		RoleNetworkStack, RoleCongestionControl, RoleMonitoring,
		RoleFirewall, RoleVirtualSwitch, RoleLoadBalancer, RoleTransport,
	}
}

// Property is a named objective a system can achieve — Listing 2's
// "solves" list (capture_delays, detect_queue_length, load_balancing, …).
type Property string

// Capability is a boolean hardware feature (ECN support, NIC timestamps,
// INT, programmability, …).
type Capability string

// Common hardware capabilities referenced by the catalog.
const (
	CapECN           Capability = "ECN"
	CapINT           Capability = "INT"
	CapQCN           Capability = "QCN"
	CapPFC           Capability = "PFC"
	CapP4            Capability = "P4_PROGRAMMABLE"
	CapNICTimestamps Capability = "NIC_TIMESTAMPS"
	CapSmartNICFPGA  Capability = "SMARTNIC_FPGA"
	CapSmartNICCPU   Capability = "SMARTNIC_CPU"
	CapRDMA          Capability = "RDMA"
	CapSRIOV         Capability = "SRIOV"
	CapInterruptPoll Capability = "INTERRUPT_POLLING"
	CapDPDK          Capability = "DPDK"
	CapCXL           Capability = "CXL"
)

// HardwareKind classifies hardware components.
type HardwareKind string

// Hardware kinds.
const (
	KindSwitch HardwareKind = "switch"
	KindNIC    HardwareKind = "nic"
	KindServer HardwareKind = "server"
)

// Resource is a named, countable quantity that systems consume and
// hardware provides (§3.1: "hardware properties such as the amount of
// memory, number of ports/queues and various bandwidth measures are easy
// to accurately characterize").
type Resource string

// Common resources referenced by the catalog.
const (
	ResCores         Resource = "cores"
	ResMemoryGB      Resource = "memory_gb"
	ResSRAMMB        Resource = "sram_mb"
	ResP4Stages      Resource = "p4_stages"
	ResQoSClasses    Resource = "qos_classes"
	ResBandwidthGbps Resource = "bandwidth_gbps"
	ResPortCount     Resource = "ports"
	ResPowerW        Resource = "power_w"
	ResBufferMB      Resource = "buffer_mb"
	ResReorderBufKB  Resource = "reorder_buffer_kb"
	ResMACEntries    Resource = "mac_entries"
)

// Hardware encodes one hardware component (Listing 1): a kind, boolean
// capabilities, quantitative resources, and the raw spec fields it was
// extracted from.
type Hardware struct {
	Name    string             `json:"name"`
	Kind    HardwareKind       `json:"kind"`
	Vendor  string             `json:"vendor,omitempty"`
	Caps    []Capability       `json:"caps,omitempty"`
	Quant   map[Resource]int64 `json:"quant,omitempty"`
	CostUSD int64              `json:"cost_usd,omitempty"`
	// Attrs preserves raw spec-sheet fields (e.g. "Ports": "40x 10
	// Gigabit Ethernet SFP+") for round-tripping and checking (§4.2).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// HasCap reports whether the hardware provides the capability.
func (h *Hardware) HasCap(c Capability) bool {
	for _, x := range h.Caps {
		if x == c {
			return true
		}
	}
	return false
}

// Q returns the quantity of a resource (0 when absent).
func (h *Hardware) Q(r Resource) int64 { return h.Quant[r] }

// Condition is a literal over a context atom: the atom's value must equal
// Value. Context atoms describe the deployment environment ("wan_dc_mix",
// "load_ge_40gbps", "deadline_tight", …).
type Condition struct {
	Atom  string `json:"atom"`
	Value bool   `json:"value"`
}

// System encodes one deployable system (Listing 2): the objectives it
// solves, its hardware and system dependencies, its conflicts, the
// conditions under which it is useful at all, and its resource costs.
type System struct {
	Name string `json:"name"`
	Role Role   `json:"role"`
	// Solves lists objectives this system achieves when deployed.
	Solves []Property `json:"solves,omitempty"`

	// RequiresCaps: deploying the system requires every listed
	// capability on the given hardware kind (e.g. Simon needs
	// NIC_TIMESTAMPS on NICs; HPCC needs INT on switches).
	RequiresCaps map[HardwareKind][]Capability `json:"requires_caps,omitempty"`

	// RequiresSystems: hard dependencies on other systems by name.
	RequiresSystems []string `json:"requires_systems,omitempty"`

	// RequiresAnyOf: for each group, at least one named system must be
	// co-deployed (e.g. a kernel-bypass stack needs some virtualization
	// layer that supports it).
	RequiresAnyOf [][]string `json:"requires_any_of,omitempty"`

	// ConflictsWith: systems that cannot be co-deployed.
	ConflictsWith []string `json:"conflicts_with,omitempty"`

	// RequiresContext: environmental preconditions for deployability
	// (e.g. a research system cannot be used under a tight deadline).
	RequiresContext []Condition `json:"requires_context,omitempty"`

	// UsefulOnlyWhen: conditions under which deploying the system
	// contributes its Solves properties; outside them it deploys but
	// solves nothing (§4.1's Annulus nuance: "required only when there
	// is competing WAN and DC traffic").
	UsefulOnlyWhen []Condition `json:"useful_only_when,omitempty"`

	// Resources: fixed per-deployment resource consumption.
	Resources map[Resource]int64 `json:"resources,omitempty"`

	// CoresPerKFlows: CPU cost proportional to workload flows (Listing
	// 2's CPU_FACTOR*num_flows), in cores per thousand flows.
	CoresPerKFlows int64 `json:"cores_per_kflows,omitempty"`

	// AppModification: deploying this system requires modifying
	// applications (Figure 1's blue dimension).
	AppModification bool `json:"app_modification,omitempty"`

	// Maturity is "production" or "research"; subjective rules key on it.
	Maturity string `json:"maturity,omitempty"`

	// Notes holds provenance: which paper/spec each fact came from.
	Notes map[string]string `json:"notes,omitempty"`
}

// SolvesProp reports whether the system lists the property.
func (s *System) SolvesProp(p Property) bool {
	for _, x := range s.Solves {
		if x == p {
			return true
		}
	}
	return false
}

// Workload encodes an application from the architect's point of view
// (Listing 3): its properties, placement, resource peaks, and the
// objectives it needs solved.
type Workload struct {
	Name string `json:"name"`
	// Properties become context atoms while reasoning about this
	// workload (dc_flows, short_flows, high_priority).
	Properties []string `json:"properties,omitempty"`
	// DeployedAt lists rack names.
	DeployedAt []string `json:"deployed_at,omitempty"`
	PeakCores  int64    `json:"peak_cores,omitempty"`
	// PeakMemoryGB is the workload's aggregate memory footprint.
	PeakMemoryGB int64 `json:"peak_memory_gb,omitempty"`
	// PeakBandwidthGbps is the workload's peak per-server network load.
	PeakBandwidthGbps int64 `json:"peak_bandwidth_gbps,omitempty"`
	// KFlows is the number of concurrent flows in thousands.
	KFlows int64 `json:"kflows,omitempty"`
	// Needs lists objectives that some deployed system must solve.
	Needs []Property `json:"needs,omitempty"`
}

// Rule is a free-form predicate-logic fact (§3.4): e.g. "PFC cannot be
// used with any flooding algorithm". Expr is over the shared atom
// namespace (see Expr documentation).
type Rule struct {
	Name string `json:"name"`
	Expr Expr   `json:"expr"`
	Note string `json:"note,omitempty"`
}

// OrderEdge is a guarded preference edge in a serialized partial order.
type OrderEdge struct {
	Better string `json:"better"`
	Worse  string `json:"worse"`
	Guard  *Expr  `json:"guard,omitempty"` // nil means always
	Note   string `json:"note,omitempty"`
}

// OrderEq is a guarded equivalence in a serialized partial order.
type OrderEq struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Guard *Expr  `json:"guard,omitempty"`
	Note  string `json:"note,omitempty"`
}

// OrderSpec serializes one conditional partial order (one dimension of
// Figure 1).
type OrderSpec struct {
	Dimension string      `json:"dimension"`
	Edges     []OrderEdge `json:"edges,omitempty"`
	Equals    []OrderEq   `json:"equals,omitempty"`
}

// KB is a complete knowledge base.
type KB struct {
	Systems   []System    `json:"systems,omitempty"`
	Hardware  []Hardware  `json:"hardware,omitempty"`
	Workloads []Workload  `json:"workloads,omitempty"`
	Rules     []Rule      `json:"rules,omitempty"`
	Orders    []OrderSpec `json:"orders,omitempty"`
}

// SystemByName returns the named system, or nil.
func (k *KB) SystemByName(name string) *System {
	for i := range k.Systems {
		if k.Systems[i].Name == name {
			return &k.Systems[i]
		}
	}
	return nil
}

// HardwareByName returns the named hardware, or nil.
func (k *KB) HardwareByName(name string) *Hardware {
	for i := range k.Hardware {
		if k.Hardware[i].Name == name {
			return &k.Hardware[i]
		}
	}
	return nil
}

// WorkloadByName returns the named workload, or nil.
func (k *KB) WorkloadByName(name string) *Workload {
	for i := range k.Workloads {
		if k.Workloads[i].Name == name {
			return &k.Workloads[i]
		}
	}
	return nil
}

// SystemsByRole returns all systems filling the role, in catalog order.
func (k *KB) SystemsByRole(r Role) []*System {
	var out []*System
	for i := range k.Systems {
		if k.Systems[i].Role == r {
			out = append(out, &k.Systems[i])
		}
	}
	return out
}

// HardwareByKind returns all hardware of the kind, in catalog order.
func (k *KB) HardwareByKind(kind HardwareKind) []*Hardware {
	var out []*Hardware
	for i := range k.Hardware {
		if k.Hardware[i].Kind == kind {
			out = append(out, &k.Hardware[i])
		}
	}
	return out
}

// OrderByDimension returns the order spec for the dimension, or nil.
func (k *KB) OrderByDimension(dim string) *OrderSpec {
	for i := range k.Orders {
		if k.Orders[i].Dimension == dim {
			return &k.Orders[i]
		}
	}
	return nil
}

// Merge appends another knowledge base's entries; duplicate names are
// rejected (encodings are meant to be modular and contributed
// independently, §6 "proof modularity").
func (k *KB) Merge(other *KB) error {
	for i := range other.Systems {
		if k.SystemByName(other.Systems[i].Name) != nil {
			return fmt.Errorf("kb: duplicate system %q", other.Systems[i].Name)
		}
		k.Systems = append(k.Systems, other.Systems[i])
	}
	for i := range other.Hardware {
		if k.HardwareByName(other.Hardware[i].Name) != nil {
			return fmt.Errorf("kb: duplicate hardware %q", other.Hardware[i].Name)
		}
		k.Hardware = append(k.Hardware, other.Hardware[i])
	}
	for i := range other.Workloads {
		if k.WorkloadByName(other.Workloads[i].Name) != nil {
			return fmt.Errorf("kb: duplicate workload %q", other.Workloads[i].Name)
		}
		k.Workloads = append(k.Workloads, other.Workloads[i])
	}
	k.Rules = append(k.Rules, other.Rules...)
	for _, o := range other.Orders {
		if existing := k.OrderByDimension(o.Dimension); existing != nil {
			existing.Edges = append(existing.Edges, o.Edges...)
			existing.Equals = append(existing.Equals, o.Equals...)
		} else {
			k.Orders = append(k.Orders, o)
		}
	}
	return nil
}

// Stats summarizes a knowledge base; SpecSize is the §3.1 success metric
// ("the length of specification should grow linearly with the number of
// systems, hardware and workloads included").
type Stats struct {
	Systems    int
	Hardware   int
	Workloads  int
	Rules      int
	OrderEdges int
	// SpecSize counts atomic encoded facts: one per solve/requirement/
	// conflict/resource/capability/quantity/edge/rule-node.
	SpecSize int
}

// ComputeStats returns summary statistics for the KB.
func (k *KB) ComputeStats() Stats {
	st := Stats{
		Systems:   len(k.Systems),
		Hardware:  len(k.Hardware),
		Workloads: len(k.Workloads),
		Rules:     len(k.Rules),
	}
	size := 0
	for i := range k.Systems {
		s := &k.Systems[i]
		size++ // existence
		size += len(s.Solves) + len(s.RequiresSystems) + len(s.ConflictsWith) +
			len(s.RequiresContext) + len(s.UsefulOnlyWhen) + len(s.Resources)
		for _, caps := range s.RequiresCaps {
			size += len(caps)
		}
		for _, g := range s.RequiresAnyOf {
			size += len(g)
		}
		if s.CoresPerKFlows != 0 {
			size++
		}
	}
	for i := range k.Hardware {
		h := &k.Hardware[i]
		size++
		size += len(h.Caps) + len(h.Quant)
	}
	for i := range k.Workloads {
		w := &k.Workloads[i]
		size++
		size += len(w.Properties) + len(w.Needs) + len(w.DeployedAt)
	}
	for _, r := range k.Rules {
		size += r.Expr.size()
	}
	for _, o := range k.Orders {
		st.OrderEdges += len(o.Edges) + len(o.Equals)
		size += len(o.Edges) + len(o.Equals)
	}
	st.SpecSize = size
	return st
}

// AllProperties returns the sorted set of properties mentioned anywhere.
func (k *KB) AllProperties() []Property {
	set := map[Property]bool{}
	for i := range k.Systems {
		for _, p := range k.Systems[i].Solves {
			set[p] = true
		}
	}
	for i := range k.Workloads {
		for _, p := range k.Workloads[i].Needs {
			set[p] = true
		}
	}
	out := make([]Property, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package kb

import (
	"fmt"
	"strings"
)

// Validate checks referential integrity of the knowledge base: unique
// names, known roles and kinds, resolvable system references, well-formed
// rules and order specs. It returns all problems found, joined, rather
// than stopping at the first — encoding errors come in batches when
// encodings are crowd-sourced.
func (k *KB) Validate() error {
	var errs []string
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	knownRoles := map[Role]bool{}
	for _, r := range Roles() {
		knownRoles[r] = true
	}
	knownKinds := map[HardwareKind]bool{KindSwitch: true, KindNIC: true, KindServer: true}

	sysNames := map[string]bool{}
	for i := range k.Systems {
		s := &k.Systems[i]
		if s.Name == "" {
			report("system %d: empty name", i)
			continue
		}
		if sysNames[s.Name] {
			report("duplicate system %q", s.Name)
		}
		sysNames[s.Name] = true
		if !knownRoles[s.Role] {
			report("system %q: unknown role %q", s.Name, s.Role)
		}
		if s.Maturity != "" && s.Maturity != "production" && s.Maturity != "research" {
			report("system %q: maturity must be production|research, got %q", s.Name, s.Maturity)
		}
		for kind := range s.RequiresCaps {
			if !knownKinds[kind] {
				report("system %q: unknown hardware kind %q", s.Name, kind)
			}
		}
		for r, v := range s.Resources {
			if v < 0 {
				report("system %q: negative resource %s=%d", s.Name, r, v)
			}
		}
		if s.CoresPerKFlows < 0 {
			report("system %q: negative cores_per_kflows", s.Name)
		}
	}
	// Cross references (second pass so order doesn't matter).
	for i := range k.Systems {
		s := &k.Systems[i]
		for _, dep := range s.RequiresSystems {
			if !sysNames[dep] {
				report("system %q requires unknown system %q", s.Name, dep)
			}
		}
		for _, grp := range s.RequiresAnyOf {
			if len(grp) == 0 {
				report("system %q: empty any-of group", s.Name)
			}
			for _, dep := range grp {
				if !sysNames[dep] {
					report("system %q any-of references unknown system %q", s.Name, dep)
				}
			}
		}
		for _, c := range s.ConflictsWith {
			if !sysNames[c] {
				report("system %q conflicts with unknown system %q", s.Name, c)
			}
			if c == s.Name {
				report("system %q conflicts with itself", s.Name)
			}
		}
	}

	hwNames := map[string]bool{}
	for i := range k.Hardware {
		h := &k.Hardware[i]
		if h.Name == "" {
			report("hardware %d: empty name", i)
			continue
		}
		if hwNames[h.Name] {
			report("duplicate hardware %q", h.Name)
		}
		hwNames[h.Name] = true
		if !knownKinds[h.Kind] {
			report("hardware %q: unknown kind %q", h.Name, h.Kind)
		}
		for r, v := range h.Quant {
			if v < 0 {
				report("hardware %q: negative quantity %s=%d", h.Name, r, v)
			}
		}
	}

	wlNames := map[string]bool{}
	for i := range k.Workloads {
		w := &k.Workloads[i]
		if w.Name == "" {
			report("workload %d: empty name", i)
			continue
		}
		if wlNames[w.Name] {
			report("duplicate workload %q", w.Name)
		}
		wlNames[w.Name] = true
		if w.PeakCores < 0 || w.PeakBandwidthGbps < 0 || w.KFlows < 0 || w.PeakMemoryGB < 0 {
			report("workload %q: negative quantities", w.Name)
		}
	}

	for _, r := range k.Rules {
		if r.Name == "" {
			report("rule with empty name (note: %q)", r.Note)
		}
		if err := r.Expr.Validate(); err != nil {
			report("rule %q: %v", r.Name, err)
		}
		for _, atom := range r.Expr.Atoms(nil) {
			if err := validateAtom(atom, sysNames, hwNames); err != nil {
				report("rule %q: %v", r.Name, err)
			}
		}
	}

	dims := map[string]bool{}
	for _, o := range k.Orders {
		if o.Dimension == "" {
			report("order spec with empty dimension")
			continue
		}
		if dims[o.Dimension] {
			report("duplicate order dimension %q", o.Dimension)
		}
		dims[o.Dimension] = true
		check := func(guard *Expr, where string) {
			if guard == nil {
				return
			}
			if err := guard.Validate(); err != nil {
				report("order %q %s: %v", o.Dimension, where, err)
				return
			}
			for _, atom := range guard.Atoms(nil) {
				if err := validateAtom(atom, sysNames, hwNames); err != nil {
					report("order %q %s: %v", o.Dimension, where, err)
				}
			}
		}
		for _, e := range o.Edges {
			if e.Better == e.Worse {
				report("order %q: self edge %q", o.Dimension, e.Better)
			}
			check(e.Guard, fmt.Sprintf("edge %s>%s", e.Better, e.Worse))
		}
		for _, e := range o.Equals {
			if e.A == e.B {
				report("order %q: self equivalence %q", o.Dimension, e.A)
			}
			check(e.Guard, fmt.Sprintf("equal %s=%s", e.A, e.B))
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("kb: %d validation error(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
}

// validateAtom checks an atom's namespace and, where resolvable, its
// referent.
func validateAtom(atom string, sysNames, hwNames map[string]bool) error {
	parts := strings.SplitN(atom, ":", 2)
	if len(parts) != 2 || parts[1] == "" {
		return fmt.Errorf("malformed atom %q (want namespace:name)", atom)
	}
	switch parts[0] {
	case "system":
		if !sysNames[parts[1]] {
			return fmt.Errorf("atom %q references unknown system", atom)
		}
	case "hw":
		if !hwNames[parts[1]] {
			return fmt.Errorf("atom %q references unknown hardware", atom)
		}
	case "ctx", "prop":
		// Context and property atoms are open-world by design.
	case "cap":
		sub := strings.SplitN(parts[1], ":", 2)
		if len(sub) != 2 {
			return fmt.Errorf("malformed capability atom %q (want cap:kind:CAP)", atom)
		}
		switch HardwareKind(sub[0]) {
		case KindSwitch, KindNIC, KindServer:
		default:
			return fmt.Errorf("capability atom %q has unknown kind %q", atom, sub[0])
		}
	default:
		return fmt.Errorf("atom %q has unknown namespace %q", atom, parts[0])
	}
	return nil
}

package kb

import (
	"fmt"

	"netarch/internal/logic"
	"netarch/internal/order"
)

// Build compiles the serialized order spec into an order.Graph, resolving
// guard atoms through the given vocabulary (shared with other compiled
// artifacts so the same context atoms drive everything).
func (spec *OrderSpec) Build(vo *logic.Vocabulary) (*order.Graph, error) {
	g := order.New(spec.Dimension)
	compileGuard := func(e *Expr) (logic.Formula, error) {
		if e == nil {
			return logic.True, nil
		}
		return e.Compile(vo.Get)
	}
	for _, e := range spec.Edges {
		f, err := compileGuard(e.Guard)
		if err != nil {
			return nil, fmt.Errorf("kb: order %s edge %s>%s: %w", spec.Dimension, e.Better, e.Worse, err)
		}
		if err := g.AddEdge(e.Better, e.Worse, f, e.Note); err != nil {
			return nil, err
		}
	}
	for _, e := range spec.Equals {
		f, err := compileGuard(e.Guard)
		if err != nil {
			return nil, fmt.Errorf("kb: order %s equal %s=%s: %w", spec.Dimension, e.A, e.B, err)
		}
		if err := g.AddEqual(e.A, e.B, f, e.Note); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Resolve compiles the spec and resolves it under the named context
// atoms (missing atoms are false). Extra nodes can be registered so that
// items without comparisons still appear (Figure 1 draws all six stacks).
func (spec *OrderSpec) Resolve(ctx map[string]bool, extraNodes ...string) (*order.Resolved, error) {
	vo := logic.NewVocabulary()
	g, err := spec.Build(vo)
	if err != nil {
		return nil, err
	}
	for _, n := range extraNodes {
		g.AddNode(n)
	}
	octx := order.Context{}
	for name, v := range ctx {
		octx[vo.Get("ctx:"+name)] = v
	}
	return g.Resolve(octx)
}

// DOT renders the spec as Graphviz in the Figure 1 style.
func (spec *OrderSpec) DOT(color string) (string, error) {
	vo := logic.NewVocabulary()
	g, err := spec.Build(vo)
	if err != nil {
		return "", err
	}
	return g.DOT(vo, color), nil
}

package kb

import (
	"bytes"
	"strings"
	"testing"
)

// tinyKB builds a small but representative knowledge base used across the
// package tests: the SIMON encoding of Listing 2, a dependent stack, and
// supporting hardware.
func tinyKB() *KB {
	return &KB{
		Systems: []System{
			{
				Name:   "simon",
				Role:   RoleMonitoring,
				Solves: []Property{"capture_delays", "detect_queue_length"},
				RequiresCaps: map[HardwareKind][]Capability{
					KindNIC: {CapNICTimestamps},
				},
				CoresPerKFlows: 2,
				Maturity:       "research",
				Notes:          map[string]string{"solves": "NSDI'19"},
			},
			{
				Name:     "pingmesh",
				Role:     RoleMonitoring,
				Solves:   []Property{"capture_delays"},
				Maturity: "production",
			},
			{
				Name:            "shenango",
				Role:            RoleNetworkStack,
				Solves:          []Property{"low_latency_stack"},
				RequiresCaps:    map[HardwareKind][]Capability{KindNIC: {CapInterruptPoll}},
				Resources:       map[Resource]int64{ResCores: 1},
				RequiresContext: []Condition{{Atom: "deadline_tight", Value: false}},
				Maturity:        "research",
			},
			{
				Name:           "annulus",
				Role:           RoleCongestionControl,
				Solves:         []Property{"congestion_control"},
				RequiresCaps:   map[HardwareKind][]Capability{KindSwitch: {CapQCN}},
				UsefulOnlyWhen: []Condition{{Atom: "wan_dc_mix", Value: true}},
				ConflictsWith:  []string{"cubic"},
			},
			{
				Name:   "cubic",
				Role:   RoleCongestionControl,
				Solves: []Property{"congestion_control"},
			},
		},
		Hardware: []Hardware{
			{
				Name: "nic-ts100", Kind: KindNIC,
				Caps:  []Capability{CapNICTimestamps, CapInterruptPoll},
				Quant: map[Resource]int64{ResBandwidthGbps: 100},
			},
			{
				Name: "switch-qcn", Kind: KindSwitch,
				Caps:  []Capability{CapQCN, CapECN},
				Quant: map[Resource]int64{ResPortCount: 32, ResBufferMB: 64},
			},
			{
				Name: "server-std", Kind: KindServer,
				Quant: map[Resource]int64{ResCores: 64, ResMemoryGB: 256},
			},
		},
		Workloads: []Workload{
			{
				Name:              "inference_app",
				Properties:        []string{"dc_flows", "short_flows", "high_priority"},
				DeployedAt:        []string{"rack0", "rack1", "rack2"},
				PeakCores:         2800,
				PeakBandwidthGbps: 30,
				KFlows:            40,
				Needs:             []Property{"congestion_control"},
			},
		},
		Rules: []Rule{
			{
				Name: "pfc_no_flooding",
				Expr: Implies(CtxAtom("pfc_enabled"), Not(CtxAtom("flooding_enabled"))),
				Note: "RDMA at scale, SIGCOMM'16",
			},
		},
		Orders: []OrderSpec{
			{
				Dimension: "monitoring",
				Edges: []OrderEdge{
					{Better: "simon", Worse: "pingmesh", Note: "accuracy"},
				},
			},
			{
				Dimension: "deployment_ease",
				Edges: []OrderEdge{
					{Better: "pingmesh", Worse: "simon", Note: "no SmartNIC needed"},
				},
			},
		},
	}
}

func TestTinyKBValid(t *testing.T) {
	if err := tinyKB().Validate(); err != nil {
		t.Fatalf("tiny KB must validate: %v", err)
	}
}

func TestLookups(t *testing.T) {
	k := tinyKB()
	if k.SystemByName("simon") == nil || k.SystemByName("ghost") != nil {
		t.Error("SystemByName wrong")
	}
	if k.HardwareByName("nic-ts100") == nil || k.HardwareByName("x") != nil {
		t.Error("HardwareByName wrong")
	}
	if k.WorkloadByName("inference_app") == nil || k.WorkloadByName("x") != nil {
		t.Error("WorkloadByName wrong")
	}
	if got := len(k.SystemsByRole(RoleMonitoring)); got != 2 {
		t.Errorf("SystemsByRole(monitoring): got %d, want 2", got)
	}
	if got := len(k.HardwareByKind(KindNIC)); got != 1 {
		t.Errorf("HardwareByKind(nic): got %d, want 1", got)
	}
	if k.OrderByDimension("monitoring") == nil || k.OrderByDimension("x") != nil {
		t.Error("OrderByDimension wrong")
	}
}

func TestHardwareAccessors(t *testing.T) {
	k := tinyKB()
	h := k.HardwareByName("nic-ts100")
	if !h.HasCap(CapNICTimestamps) || h.HasCap(CapP4) {
		t.Error("HasCap wrong")
	}
	if h.Q(ResBandwidthGbps) != 100 || h.Q(ResCores) != 0 {
		t.Error("Q wrong")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := tinyKB().SystemByName("simon")
	if !s.SolvesProp("capture_delays") || s.SolvesProp("nope") {
		t.Error("SolvesProp wrong")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*KB)
		want   string
	}{
		{"dup system", func(k *KB) { k.Systems = append(k.Systems, k.Systems[0]) }, "duplicate system"},
		{"bad role", func(k *KB) { k.Systems[0].Role = "router" }, "unknown role"},
		{"bad maturity", func(k *KB) { k.Systems[0].Maturity = "beta" }, "maturity"},
		{"unknown dep", func(k *KB) { k.Systems[0].RequiresSystems = []string{"ghost"} }, "unknown system"},
		{"self conflict", func(k *KB) { k.Systems[0].ConflictsWith = []string{"simon"} }, "conflicts with itself"},
		{"unknown conflict", func(k *KB) { k.Systems[0].ConflictsWith = []string{"ghost"} }, "unknown system"},
		{"empty anyof", func(k *KB) { k.Systems[0].RequiresAnyOf = [][]string{{}} }, "empty any-of"},
		{"neg resource", func(k *KB) { k.Systems[0].Resources = map[Resource]int64{ResCores: -1} }, "negative resource"},
		{"dup hardware", func(k *KB) { k.Hardware = append(k.Hardware, k.Hardware[0]) }, "duplicate hardware"},
		{"bad kind", func(k *KB) { k.Hardware[0].Kind = "gpu" }, "unknown kind"},
		{"neg quant", func(k *KB) { k.Hardware[0].Quant = map[Resource]int64{ResCores: -2} }, "negative quantity"},
		{"dup workload", func(k *KB) { k.Workloads = append(k.Workloads, k.Workloads[0]) }, "duplicate workload"},
		{"neg workload", func(k *KB) { k.Workloads[0].PeakCores = -5 }, "negative quantities"},
		{"bad rule expr", func(k *KB) { k.Rules[0].Expr = Expr{Op: "xor"} }, "unknown expression op"},
		{"bad rule atom", func(k *KB) { k.Rules[0].Expr = Atom("system:ghost") }, "unknown system"},
		{"bad atom ns", func(k *KB) { k.Rules[0].Expr = Atom("planet:mars") }, "unknown namespace"},
		{"malformed atom", func(k *KB) { k.Rules[0].Expr = Atom("noseparator") }, "malformed atom"},
		{"self order edge", func(k *KB) { k.Orders[0].Edges[0].Worse = "simon" }, "self edge"},
		{"dup dimension", func(k *KB) { k.Orders = append(k.Orders, OrderSpec{Dimension: "monitoring"}) }, "duplicate order dimension"},
		{"bad cap atom", func(k *KB) { k.Rules[0].Expr = Atom("cap:nic") }, "malformed capability atom"},
		{"bad cap kind", func(k *KB) { k.Rules[0].Expr = Atom("cap:gpu:ECN") }, "unknown kind"},
	}
	for _, c := range cases {
		k := tinyKB()
		c.mutate(k)
		err := k.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestMerge(t *testing.T) {
	a := tinyKB()
	b := &KB{
		Systems: []System{{Name: "sonata", Role: RoleMonitoring}},
		Orders: []OrderSpec{
			{Dimension: "monitoring", Edges: []OrderEdge{{Better: "sonata", Worse: "pingmesh"}}},
			{Dimension: "cost", Edges: []OrderEdge{{Better: "pingmesh", Worse: "sonata"}}},
		},
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.SystemByName("sonata") == nil {
		t.Error("merged system missing")
	}
	if got := len(a.OrderByDimension("monitoring").Edges); got != 2 {
		t.Errorf("merged order edges: got %d, want 2", got)
	}
	if a.OrderByDimension("cost") == nil {
		t.Error("new dimension missing after merge")
	}
	// Duplicate merge must fail.
	if err := a.Merge(&KB{Systems: []System{{Name: "simon", Role: RoleMonitoring}}}); err == nil {
		t.Error("duplicate system merge must fail")
	}
	if err := a.Merge(&KB{Hardware: []Hardware{{Name: "nic-ts100", Kind: KindNIC}}}); err == nil {
		t.Error("duplicate hardware merge must fail")
	}
	if err := a.Merge(&KB{Workloads: []Workload{{Name: "inference_app"}}}); err == nil {
		t.Error("duplicate workload merge must fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	k := tinyKB()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.Systems) != len(k.Systems) || len(k2.Hardware) != len(k.Hardware) {
		t.Fatal("roundtrip lost entries")
	}
	s := k2.SystemByName("simon")
	if s == nil || !s.SolvesProp("capture_delays") || s.CoresPerKFlows != 2 {
		t.Error("roundtrip lost system fields")
	}
	if k2.Rules[0].Expr.String() != k.Rules[0].Expr.String() {
		t.Error("roundtrip changed rule expression")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"systems":[{"name":"x","role":"bad"}]}`)); err == nil {
		t.Error("invalid KB must be rejected at load")
	}
}

func TestComputeStats(t *testing.T) {
	k := tinyKB()
	st := k.ComputeStats()
	if st.Systems != 5 || st.Hardware != 3 || st.Workloads != 1 || st.Rules != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st.OrderEdges != 2 {
		t.Errorf("order edges: got %d, want 2", st.OrderEdges)
	}
	if st.SpecSize <= st.Systems+st.Hardware {
		t.Errorf("SpecSize implausibly small: %d", st.SpecSize)
	}
	// Linearity sanity: doubling disjoint content roughly doubles size.
	k2 := tinyKB()
	for i := range k2.Systems {
		k2.Systems[i].Name += "_2"
		k2.Systems[i].RequiresSystems = nil
		k2.Systems[i].ConflictsWith = nil
	}
	for i := range k2.Hardware {
		k2.Hardware[i].Name += "_2"
	}
	for i := range k2.Workloads {
		k2.Workloads[i].Name += "_2"
	}
	k2.Orders = nil
	k2.Rules = nil
	base := st.SpecSize
	if err := k.Merge(k2); err != nil {
		t.Fatal(err)
	}
	grown := k.ComputeStats().SpecSize
	if grown <= base || grown > 2*base {
		t.Errorf("spec growth not linear-ish: %d -> %d", base, grown)
	}
}

func TestAllProperties(t *testing.T) {
	k := tinyKB()
	props := k.AllProperties()
	want := map[Property]bool{
		"capture_delays": true, "detect_queue_length": true,
		"low_latency_stack": true, "congestion_control": true,
	}
	if len(props) != len(want) {
		t.Fatalf("AllProperties: got %v", props)
	}
	for _, p := range props {
		if !want[p] {
			t.Errorf("unexpected property %q", p)
		}
	}
	// sorted
	for i := 1; i < len(props); i++ {
		if props[i-1] >= props[i] {
			t.Error("properties not sorted")
		}
	}
}

package kb

import (
	"encoding/json"
	"fmt"
	"io"
)

// Load decodes a knowledge base from JSON and validates it.
func Load(r io.Reader) (*KB, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var k KB
	if err := dec.Decode(&k); err != nil {
		return nil, fmt.Errorf("kb: decoding: %w", err)
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &k, nil
}

// Save encodes the knowledge base as indented JSON.
func (k *KB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(k); err != nil {
		return fmt.Errorf("kb: encoding: %w", err)
	}
	return nil
}

package kb

import (
	"fmt"
	"strings"

	"netarch/internal/logic"
)

// Expr is a serializable predicate-logic expression over the knowledge
// base's shared atom namespace. Atoms are namespaced strings:
//
//	system:<name>        — system <name> is deployed
//	ctx:<name>           — environment/context flag
//	prop:<property>      — objective <property> is achieved
//	hw:<name>            — hardware model <name> is selected
//	cap:<kind>:<cap>     — selected <kind> hardware has capability <cap>
//
// Expr is a tagged tree: Op is one of "atom", "not", "and", "or",
// "implies", "iff", "true", "false". Atom is set only for Op == "atom".
type Expr struct {
	Op   string `json:"op"`
	Atom string `json:"atom,omitempty"`
	Args []Expr `json:"args,omitempty"`
}

// Expression constructors.

// Atom returns the atom expression for a namespaced name.
func Atom(name string) Expr { return Expr{Op: "atom", Atom: name} }

// SystemAtom returns the atom "system:<name>".
func SystemAtom(name string) Expr { return Atom("system:" + name) }

// CtxAtom returns the atom "ctx:<name>".
func CtxAtom(name string) Expr { return Atom("ctx:" + name) }

// PropAtom returns the atom "prop:<name>".
func PropAtom(p Property) Expr { return Atom("prop:" + string(p)) }

// HwAtom returns the atom "hw:<name>".
func HwAtom(name string) Expr { return Atom("hw:" + name) }

// CapAtom returns the atom "cap:<kind>:<cap>".
func CapAtom(kind HardwareKind, c Capability) Expr {
	return Atom("cap:" + string(kind) + ":" + string(c))
}

// Not returns the negation of e.
func Not(e Expr) Expr { return Expr{Op: "not", Args: []Expr{e}} }

// And returns the conjunction of es.
func And(es ...Expr) Expr { return Expr{Op: "and", Args: es} }

// Or returns the disjunction of es.
func Or(es ...Expr) Expr { return Expr{Op: "or", Args: es} }

// Implies returns a → b.
func Implies(a, b Expr) Expr { return Expr{Op: "implies", Args: []Expr{a, b}} }

// Iff returns a ↔ b.
func Iff(a, b Expr) Expr { return Expr{Op: "iff", Args: []Expr{a, b}} }

// TrueExpr is the constant true expression.
func TrueExpr() Expr { return Expr{Op: "true"} }

// FalseExpr is the constant false expression.
func FalseExpr() Expr { return Expr{Op: "false"} }

// Validate checks structural well-formedness.
func (e Expr) Validate() error {
	switch e.Op {
	case "atom":
		if e.Atom == "" {
			return fmt.Errorf("kb: atom expression with empty atom")
		}
		if len(e.Args) != 0 {
			return fmt.Errorf("kb: atom %q must have no args", e.Atom)
		}
	case "true", "false":
		if len(e.Args) != 0 || e.Atom != "" {
			return fmt.Errorf("kb: constant expression must be bare")
		}
	case "not":
		if len(e.Args) != 1 {
			return fmt.Errorf("kb: not requires exactly 1 arg, got %d", len(e.Args))
		}
	case "and", "or":
		// zero args allowed (identity elements)
	case "implies", "iff":
		if len(e.Args) != 2 {
			return fmt.Errorf("kb: %s requires exactly 2 args, got %d", e.Op, len(e.Args))
		}
	default:
		return fmt.Errorf("kb: unknown expression op %q", e.Op)
	}
	for _, a := range e.Args {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// size counts nodes; used by the §3.1 spec-size metric.
func (e Expr) size() int {
	n := 1
	for _, a := range e.Args {
		n += a.size()
	}
	return n
}

// Atoms appends every atom name in e to dst and returns it.
func (e Expr) Atoms(dst []string) []string {
	if e.Op == "atom" {
		return append(dst, e.Atom)
	}
	for _, a := range e.Args {
		dst = a.Atoms(dst)
	}
	return dst
}

// Compile lowers the expression to a logic formula, resolving atom names
// to variables via resolve (typically Vocabulary.Get with a prefix).
func (e Expr) Compile(resolve func(atom string) logic.Var) (logic.Formula, error) {
	if err := e.Validate(); err != nil {
		return logic.False, err
	}
	return e.compile(resolve), nil
}

func (e Expr) compile(resolve func(atom string) logic.Var) logic.Formula {
	switch e.Op {
	case "atom":
		return logic.V(resolve(e.Atom))
	case "true":
		return logic.True
	case "false":
		return logic.False
	case "not":
		return logic.Not(e.Args[0].compile(resolve))
	case "and":
		args := make([]logic.Formula, len(e.Args))
		for i, a := range e.Args {
			args[i] = a.compile(resolve)
		}
		return logic.And(args...)
	case "or":
		args := make([]logic.Formula, len(e.Args))
		for i, a := range e.Args {
			args[i] = a.compile(resolve)
		}
		return logic.Or(args...)
	case "implies":
		return logic.Implies(e.Args[0].compile(resolve), e.Args[1].compile(resolve))
	case "iff":
		return logic.Iff(e.Args[0].compile(resolve), e.Args[1].compile(resolve))
	}
	panic("kb: unreachable after Validate")
}

// String renders the expression in a compact infix form for diagnostics.
func (e Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e Expr) write(b *strings.Builder) {
	switch e.Op {
	case "atom":
		b.WriteString(e.Atom)
	case "true":
		b.WriteString("true")
	case "false":
		b.WriteString("false")
	case "not":
		b.WriteString("!")
		b.WriteString("(")
		e.Args[0].write(b)
		b.WriteString(")")
	case "and", "or", "implies", "iff":
		op := map[string]string{"and": " & ", "or": " | ", "implies": " -> ", "iff": " <-> "}[e.Op]
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(op)
			}
			a.write(b)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<bad:%s>", e.Op)
	}
}

// ConditionExpr converts a Condition to the equivalent context-atom
// expression.
func ConditionExpr(c Condition) Expr {
	e := CtxAtom(c.Atom)
	if !c.Value {
		return Not(e)
	}
	return e
}

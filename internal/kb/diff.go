package kb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DiffEntry is one difference between two knowledge bases.
type DiffEntry struct {
	// Section is "system", "hardware", "workload", "rule" or "order".
	Section string
	// Name identifies the entry within the section.
	Name string
	// Change is "added", "removed" or "changed".
	Change string
}

// String renders the entry.
func (d DiffEntry) String() string {
	return fmt.Sprintf("%s %s %q", d.Change, d.Section, d.Name)
}

// Diff compares two knowledge bases entry by entry — the review step of
// the crowd-sourcing workflow (§3.3): a maintainer diffing a contributed
// compendium against the current one sees exactly which encodings were
// added, removed, or modified. Entries are compared by their canonical
// JSON serialization, so field order and map iteration order don't
// produce phantom changes.
func Diff(old, new *KB) []DiffEntry {
	var out []DiffEntry

	out = append(out, diffSection("system",
		namesOf(len(old.Systems), func(i int) string { return old.Systems[i].Name }),
		namesOf(len(new.Systems), func(i int) string { return new.Systems[i].Name }),
		func(name string) (any, any) {
			return old.SystemByName(name), new.SystemByName(name)
		})...)

	out = append(out, diffSection("hardware",
		namesOf(len(old.Hardware), func(i int) string { return old.Hardware[i].Name }),
		namesOf(len(new.Hardware), func(i int) string { return new.Hardware[i].Name }),
		func(name string) (any, any) {
			return old.HardwareByName(name), new.HardwareByName(name)
		})...)

	out = append(out, diffSection("workload",
		namesOf(len(old.Workloads), func(i int) string { return old.Workloads[i].Name }),
		namesOf(len(new.Workloads), func(i int) string { return new.Workloads[i].Name }),
		func(name string) (any, any) {
			return old.WorkloadByName(name), new.WorkloadByName(name)
		})...)

	ruleByName := func(k *KB, name string) any {
		for i := range k.Rules {
			if k.Rules[i].Name == name {
				return &k.Rules[i]
			}
		}
		return (*Rule)(nil)
	}
	out = append(out, diffSection("rule",
		namesOf(len(old.Rules), func(i int) string { return old.Rules[i].Name }),
		namesOf(len(new.Rules), func(i int) string { return new.Rules[i].Name }),
		func(name string) (any, any) {
			return ruleByName(old, name), ruleByName(new, name)
		})...)

	out = append(out, diffSection("order",
		namesOf(len(old.Orders), func(i int) string { return old.Orders[i].Dimension }),
		namesOf(len(new.Orders), func(i int) string { return new.Orders[i].Dimension }),
		func(name string) (any, any) {
			return old.OrderByDimension(name), new.OrderByDimension(name)
		})...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Change < b.Change
	})
	return out
}

func namesOf(n int, get func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = get(i)
	}
	return out
}

func diffSection(section string, oldNames, newNames []string,
	lookup func(name string) (any, any)) []DiffEntry {
	oldSet := map[string]bool{}
	for _, n := range oldNames {
		oldSet[n] = true
	}
	newSet := map[string]bool{}
	for _, n := range newNames {
		newSet[n] = true
	}
	var out []DiffEntry
	for _, n := range oldNames {
		if !newSet[n] {
			out = append(out, DiffEntry{section, n, "removed"})
		}
	}
	for _, n := range newNames {
		if !oldSet[n] {
			out = append(out, DiffEntry{section, n, "added"})
			continue
		}
		a, b := lookup(n)
		if canonicalJSON(a) != canonicalJSON(b) {
			out = append(out, DiffEntry{section, n, "changed"})
		}
	}
	return out
}

func canonicalJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("!err:%v", err)
	}
	return string(data)
}

// FormatDiff renders a diff as a human-readable summary.
func FormatDiff(entries []DiffEntry) string {
	if len(entries) == 0 {
		return "no differences\n"
	}
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%s\n", e)
	}
	fmt.Fprintf(&b, "%d difference(s)\n", len(entries))
	return b.String()
}

package kb

import (
	"strings"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	a, b := tinyKB(), tinyKB()
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("identical KBs must diff empty, got %v", d)
	}
	if FormatDiff(nil) != "no differences\n" {
		t.Error("empty diff rendering wrong")
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	a, b := tinyKB(), tinyKB()
	// Added system.
	b.Systems = append(b.Systems, System{Name: "newsys", Role: RoleMonitoring})
	// Removed hardware.
	b.Hardware = b.Hardware[1:]
	// Changed workload.
	b.Workloads[0].PeakCores = 9999
	// Changed rule.
	b.Rules[0].Note = "edited"
	// Added order.
	b.Orders = append(b.Orders, OrderSpec{Dimension: "newdim"})

	d := Diff(a, b)
	want := map[string]bool{
		`added system "newsys"`:            false,
		`removed hardware "nic-ts100"`:     false,
		`changed workload "inference_app"`: false,
		`changed rule "pfc_no_flooding"`:   false,
		`added order "newdim"`:             false,
	}
	for _, e := range d {
		if _, ok := want[e.String()]; ok {
			want[e.String()] = true
		} else {
			t.Errorf("unexpected diff entry: %s", e)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing diff entry: %s", k)
		}
	}
	out := FormatDiff(d)
	if !strings.Contains(out, "5 difference(s)") {
		t.Errorf("summary wrong:\n%s", out)
	}
}

func TestDiffFieldLevelChange(t *testing.T) {
	a, b := tinyKB(), tinyKB()
	b.Systems[0].CoresPerKFlows++
	d := Diff(a, b)
	if len(d) != 1 || d[0].Change != "changed" || d[0].Name != "simon" {
		t.Errorf("field change not detected: %v", d)
	}
}

func TestDiffOrderEdgeChange(t *testing.T) {
	a, b := tinyKB(), tinyKB()
	b.Orders[0].Edges[0].Note = "different provenance"
	d := Diff(a, b)
	if len(d) != 1 || d[0].Section != "order" || d[0].Change != "changed" {
		t.Errorf("order change not detected: %v", d)
	}
}

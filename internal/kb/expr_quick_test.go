package kb

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"netarch/internal/logic"
)

// randExpr builds a random well-formed expression over nAtoms ctx atoms.
func randExpr(r *rand.Rand, nAtoms, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return TrueExpr()
		case 1:
			return FalseExpr()
		default:
			return CtxAtom(atomName(r.Intn(nAtoms)))
		}
	}
	switch r.Intn(5) {
	case 0:
		return Not(randExpr(r, nAtoms, depth-1))
	case 1:
		return Implies(randExpr(r, nAtoms, depth-1), randExpr(r, nAtoms, depth-1))
	case 2:
		return Iff(randExpr(r, nAtoms, depth-1), randExpr(r, nAtoms, depth-1))
	case 3:
		n := 2 + r.Intn(2)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExpr(r, nAtoms, depth-1)
		}
		return And(args...)
	default:
		n := 2 + r.Intn(2)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExpr(r, nAtoms, depth-1)
		}
		return Or(args...)
	}
}

func atomName(i int) string { return string(rune('a' + i)) }

// evalDirect evaluates an Expr against a ctx assignment without going
// through the logic package — an independent reference semantics.
func evalDirect(e Expr, ctx map[string]bool) bool {
	switch e.Op {
	case "atom":
		return ctx[e.Atom]
	case "true":
		return true
	case "false":
		return false
	case "not":
		return !evalDirect(e.Args[0], ctx)
	case "and":
		for _, a := range e.Args {
			if !evalDirect(a, ctx) {
				return false
			}
		}
		return true
	case "or":
		for _, a := range e.Args {
			if evalDirect(a, ctx) {
				return true
			}
		}
		return false
	case "implies":
		return !evalDirect(e.Args[0], ctx) || evalDirect(e.Args[1], ctx)
	case "iff":
		return evalDirect(e.Args[0], ctx) == evalDirect(e.Args[1], ctx)
	}
	panic("bad op " + e.Op)
}

func TestQuickExprCompileMatchesDirectEval(t *testing.T) {
	const nAtoms = 4
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, nAtoms, 4)
		vo := logic.NewVocabulary()
		f, err := e.Compile(vo.Get)
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<nAtoms; mask++ {
			ctx := map[string]bool{}
			assign := map[logic.Var]bool{}
			for i := 0; i < nAtoms; i++ {
				v := mask&(1<<i) != 0
				ctx["ctx:"+atomName(i)] = v
				assign[vo.Get("ctx:"+atomName(i))] = v
			}
			if f.Eval(assign) != evalDirect(e, ctx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickExprJSONRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4, 4)
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		var back Expr
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.String() == e.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickExprValidateAcceptsGenerated(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return randExpr(r, 4, 5).Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package intlin encodes bounded non-negative integer linear arithmetic
// into CNF by bit-blasting: integer variables become vectors of SAT
// literals, sums become ripple-carry adders, and comparisons become
// reified lexicographic comparator circuits.
//
// The reasoning engine uses it for the quantitative half of the paper's
// rules of thumb — core counts, memory, port bandwidth, power budgets —
// which §3.1 singles out as the facts that are "easy to accurately
// characterize" and therefore worth encoding exactly.
//
// All integers are non-negative; ranges are [0, Max]. Widths are sized to
// the declared maximum and overflow is impossible by construction (adders
// grow their result width).
package intlin

import (
	"fmt"
	"math/bits"

	"netarch/internal/sat"
)

// Adder is the clause sink; *sat.Solver satisfies it.
type Adder interface {
	NewVar() int
	AddClause(lits ...sat.Lit) bool
}

// Int is a bit-blasted non-negative integer. Bit 0 is least significant.
// Every bit is a solver literal; constants use the builder's fixed
// true/false literal, so all Ints are handled uniformly.
type Int struct {
	bits []sat.Lit
	max  int64 // inclusive upper bound implied by construction
}

// Max returns the largest value the integer can take.
func (a Int) Max() int64 { return a.max }

// Width returns the number of bits.
func (a Int) Width() int { return len(a.bits) }

// Bits returns a copy of the integer's literals, LSB first. Together with
// Max it captures an Int exactly, so an integer circuit already present in
// a serialized solver can be re-described via RestoreInt.
func (a Int) Bits() []sat.Lit { return append([]sat.Lit(nil), a.bits...) }

// RestoreInt reassembles an Int from Bits/Max output. Unlike
// Builder.FromBits it preserves the exact declared maximum rather than
// assuming 2^len-1, and builds no clauses: the circuit the literals came
// from must already exist in the target solver (e.g. restored from a
// snapshot).
func RestoreInt(bits []sat.Lit, max int64) Int {
	if max < 0 {
		panic(fmt.Sprintf("intlin: negative maximum %d", max))
	}
	return Int{bits: append([]sat.Lit(nil), bits...), max: max}
}

// Builder allocates integer circuits over an Adder.
type Builder struct {
	s       Adder
	trueLit sat.Lit // a literal constrained to be true
}

// New returns a Builder emitting into s. It allocates one variable pinned
// true to represent constant bits.
func New(s Adder) *Builder {
	t := sat.Lit(s.NewVar())
	s.AddClause(t)
	return &Builder{s: s, trueLit: t}
}

// WithAdder returns a Builder emitting into s but reusing b's constant-
// true literal instead of allocating a new one. It exists for solver
// cloning: a clone already contains the original's pinned true variable,
// so circuits built against the clone must reference the same literal.
// s must contain b's variable space (a clone or the original itself).
func (b *Builder) WithAdder(s Adder) *Builder {
	return &Builder{s: s, trueLit: b.trueLit}
}

// Attach returns a Builder emitting into s that reuses an existing
// constant-true literal rather than allocating one. It is the
// deserialization counterpart of WithAdder: when a solver is restored from
// a snapshot the original Builder is gone, but its pinned true variable
// (recorded alongside the snapshot) is still constrained inside s.
func Attach(s Adder, trueLit sat.Lit) *Builder {
	return &Builder{s: s, trueLit: trueLit}
}

// True returns the builder's constant-true literal.
func (b *Builder) True() sat.Lit { return b.trueLit }

// False returns the builder's constant-false literal.
func (b *Builder) False() sat.Lit { return b.trueLit.Flip() }

func widthFor(max int64) int {
	if max <= 0 {
		return 0
	}
	return bits.Len64(uint64(max))
}

// Const builds the constant v (v ≥ 0).
func (b *Builder) Const(v int64) Int {
	if v < 0 {
		panic(fmt.Sprintf("intlin: negative constant %d", v))
	}
	w := widthFor(v)
	out := Int{bits: make([]sat.Lit, w), max: v}
	for i := 0; i < w; i++ {
		if v&(1<<i) != 0 {
			out.bits[i] = b.trueLit
		} else {
			out.bits[i] = b.False()
		}
	}
	return out
}

// Var builds a fresh integer variable ranging over [0, max].
func (b *Builder) Var(max int64) Int {
	if max < 0 {
		panic(fmt.Sprintf("intlin: negative maximum %d", max))
	}
	w := widthFor(max)
	out := Int{bits: make([]sat.Lit, w), max: max}
	for i := range out.bits {
		out.bits[i] = sat.Lit(b.s.NewVar())
	}
	// If max is not 2^w - 1, forbid values above max.
	if max != (1<<w)-1 {
		b.s.AddClause(b.LeqConst(out, max))
	}
	return out
}

// FromBits wraps existing literals as an integer (bit 0 = LSB). The value
// is the standard binary interpretation; max is 2^len-1.
func (b *Builder) FromBits(lits []sat.Lit) Int {
	cp := append([]sat.Lit(nil), lits...)
	var max int64
	if len(cp) > 0 {
		max = (1 << len(cp)) - 1
	}
	return Int{bits: cp, max: max}
}

// BoolAsInt returns the 0/1 integer equal to the truth value of l.
func (b *Builder) BoolAsInt(l sat.Lit) Int {
	return Int{bits: []sat.Lit{l}, max: 1}
}

// ScaledBool returns the integer that is c when l is true and 0 otherwise
// (c ≥ 0). It is the building block for "deploying system S costs c cores".
func (b *Builder) ScaledBool(l sat.Lit, c int64) Int {
	if c < 0 {
		panic(fmt.Sprintf("intlin: negative scale %d", c))
	}
	w := widthFor(c)
	out := Int{bits: make([]sat.Lit, w), max: c}
	for i := 0; i < w; i++ {
		if c&(1<<i) != 0 {
			out.bits[i] = l
		} else {
			out.bits[i] = b.False()
		}
	}
	return out
}

// gate helpers -------------------------------------------------------------

// andGate returns a literal g with g ↔ (l1 ∧ … ∧ ln).
func (b *Builder) andGate(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return b.trueLit
	case 1:
		return ls[0]
	}
	g := sat.Lit(b.s.NewVar())
	long := make([]sat.Lit, 0, len(ls)+1)
	long = append(long, g)
	for _, l := range ls {
		b.s.AddClause(g.Flip(), l) // g -> l
		long = append(long, l.Flip())
	}
	b.s.AddClause(long...) // all l -> g
	return g
}

// orGate returns a literal g with g ↔ (l1 ∨ … ∨ ln).
func (b *Builder) orGate(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return b.False()
	case 1:
		return ls[0]
	}
	g := sat.Lit(b.s.NewVar())
	long := make([]sat.Lit, 0, len(ls)+1)
	long = append(long, g.Flip())
	for _, l := range ls {
		b.s.AddClause(g, l.Flip()) // l -> g
		long = append(long, l)
	}
	b.s.AddClause(long...) // g -> some l
	return g
}

// iffGate returns a literal g with g ↔ (a ↔ b).
func (b *Builder) iffGate(a, c sat.Lit) sat.Lit {
	g := sat.Lit(b.s.NewVar())
	b.s.AddClause(g.Flip(), a.Flip(), c)
	b.s.AddClause(g.Flip(), a, c.Flip())
	b.s.AddClause(g, a, c)
	b.s.AddClause(g, a.Flip(), c.Flip())
	return g
}

// xorGate returns a literal g with g ↔ (a ⊕ c).
func (b *Builder) xorGate(a, c sat.Lit) sat.Lit {
	return b.iffGate(a, c).Flip()
}

// fullAdder returns sum and carry-out literals for a+c+cin.
func (b *Builder) fullAdder(a, c, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.xorGate(b.xorGate(a, c), cin)
	cout = b.orGate(b.andGate(a, c), b.andGate(a, cin), b.andGate(c, cin))
	return sum, cout
}

// bit returns the i-th bit of a, or constant false beyond its width.
func (b *Builder) bit(a Int, i int) sat.Lit {
	if i < len(a.bits) {
		return a.bits[i]
	}
	return b.False()
}

// Add returns a+c as a new integer (width grows to avoid overflow).
func (b *Builder) Add(a, c Int) Int {
	max := a.max + c.max
	w := widthFor(max)
	out := Int{bits: make([]sat.Lit, w), max: max}
	carry := b.False()
	for i := 0; i < w; i++ {
		out.bits[i], carry = b.fullAdder(b.bit(a, i), b.bit(c, i), carry)
	}
	// carry out of the top bit is impossible given max; no clause needed.
	return out
}

// Sum returns the sum of all terms using a balanced tree of adders.
func (b *Builder) Sum(terms ...Int) Int {
	switch len(terms) {
	case 0:
		return b.Const(0)
	case 1:
		return terms[0]
	}
	mid := len(terms) / 2
	return b.Add(b.Sum(terms[:mid]...), b.Sum(terms[mid:]...))
}

// MulConst returns a*c for a constant c ≥ 0 via shift-and-add.
func (b *Builder) MulConst(a Int, c int64) Int {
	if c < 0 {
		panic(fmt.Sprintf("intlin: negative multiplier %d", c))
	}
	if c == 0 || a.max == 0 {
		return b.Const(0)
	}
	var parts []Int
	for i := 0; i < 63 && c>>i != 0; i++ {
		if c&(1<<i) == 0 {
			continue
		}
		// a << i
		shifted := Int{bits: make([]sat.Lit, len(a.bits)+i), max: a.max << i}
		for j := 0; j < i; j++ {
			shifted.bits[j] = b.False()
		}
		copy(shifted.bits[i:], a.bits)
		parts = append(parts, shifted)
	}
	return b.Sum(parts...)
}

// comparisons ---------------------------------------------------------------

// LeqConst returns a reified literal g with g ↔ (a ≤ k).
func (b *Builder) LeqConst(a Int, k int64) sat.Lit {
	if k < 0 {
		return b.False()
	}
	if k >= a.max {
		return b.trueLit
	}
	// MSB-first: leq holds iff for the highest bit where a differs from k,
	// a has 0 and k has 1 — or they never differ.
	leq := b.trueLit
	for i := 0; i < len(a.bits); i++ { // from LSB to MSB, folding suffix results
		ai := a.bits[i]
		if k&(1<<i) != 0 {
			// ki=1: leq_i ↔ ¬ai ∨ leq_{i+1}
			leq = b.orGate(ai.Flip(), leq)
		} else {
			// ki=0: leq_i ↔ ¬ai ∧ leq_{i+1}
			leq = b.andGate(ai.Flip(), leq)
		}
	}
	return leq
}

// GeqConst returns a reified literal g with g ↔ (a ≥ k).
func (b *Builder) GeqConst(a Int, k int64) sat.Lit {
	if k <= 0 {
		return b.trueLit
	}
	if k > a.max {
		return b.False()
	}
	return b.LeqConst(a, k-1).Flip()
}

// EqConst returns a reified literal g with g ↔ (a = k).
func (b *Builder) EqConst(a Int, k int64) sat.Lit {
	if k < 0 || k > a.max {
		return b.False()
	}
	ls := make([]sat.Lit, len(a.bits))
	for i, bi := range a.bits {
		if k&(1<<i) != 0 {
			ls[i] = bi
		} else {
			ls[i] = bi.Flip()
		}
	}
	return b.andGate(ls...)
}

// Leq returns a reified literal g with g ↔ (a ≤ c).
func (b *Builder) Leq(a, c Int) sat.Lit {
	w := len(a.bits)
	if len(c.bits) > w {
		w = len(c.bits)
	}
	// lt_i / eq_i over the suffix of bits i..w-1, folded LSB→MSB:
	// lt over suffix i = (¬a_i ∧ c_i) ∨ ((a_i ↔ c_i) ∧ lt_{i+1}).
	lt := b.False()
	for i := 0; i < w; i++ {
		ai, ci := b.bit(a, i), b.bit(c, i)
		lt = b.orGate(b.andGate(ai.Flip(), ci), b.andGate(b.iffGate(ai, ci), lt))
	}
	// a ≤ c ⟺ a < c ∨ a = c; fold equality into the final or.
	return b.orGate(lt, b.Eq(a, c))
}

// Lt returns a reified literal g with g ↔ (a < c).
func (b *Builder) Lt(a, c Int) sat.Lit {
	return b.Leq(c, a).Flip()
}

// Eq returns a reified literal g with g ↔ (a = c).
func (b *Builder) Eq(a, c Int) sat.Lit {
	w := len(a.bits)
	if len(c.bits) > w {
		w = len(c.bits)
	}
	ls := make([]sat.Lit, w)
	for i := 0; i < w; i++ {
		ls[i] = b.iffGate(b.bit(a, i), b.bit(c, i))
	}
	return b.andGate(ls...)
}

// Assert adds the literal as a unit clause (convenience).
func (b *Builder) Assert(l sat.Lit) { b.s.AddClause(l) }

// AssertImplies adds guard → l.
func (b *Builder) AssertImplies(guard, l sat.Lit) { b.s.AddClause(guard.Flip(), l) }

// ValueOf reads the integer's value from a model (model[i] is the value of
// variable i+1).
func ValueOf(a Int, model []bool) int64 {
	var v int64
	for i, l := range a.bits {
		val := model[l.Var()-1]
		if l.Neg() {
			val = !val
		}
		if val {
			v |= 1 << i
		}
	}
	return v
}

package intlin

import (
	"math/rand"
	"testing"

	"netarch/internal/sat"
)

// pin asserts a = v and returns whether the solver stayed consistent.
func pin(b *Builder, a Int, v int64) {
	b.Assert(b.EqConst(a, v))
}

func TestConstRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 7, 8, 100, 1023, 1024} {
		s := sat.NewSolver()
		b := New(s)
		c := b.Const(v)
		if c.Max() != v {
			t.Errorf("Const(%d).Max: got %d", v, c.Max())
		}
		if s.Solve() != sat.Sat {
			t.Fatal("want SAT")
		}
		if got := ValueOf(c, s.Model()); got != v {
			t.Errorf("Const(%d): model value %d", v, got)
		}
	}
}

func TestVarRange(t *testing.T) {
	for _, max := range []int64{0, 1, 5, 8, 100} {
		s := sat.NewSolver()
		b := New(s)
		a := b.Var(max)
		// Every value in [0, max] must be attainable…
		for v := int64(0); v <= max; v++ {
			if s.SolveAssuming([]sat.Lit{b.EqConst(a, v)}) != sat.Sat {
				t.Fatalf("max=%d: value %d unreachable", max, v)
			}
			if got := ValueOf(a, s.Model()); got != v {
				t.Fatalf("max=%d: pinned %d, read %d", max, v, got)
			}
		}
		// …and max+1 must not be.
		if s.SolveAssuming([]sat.Lit{b.GeqConst(a, max+1)}) != sat.Unsat {
			t.Fatalf("max=%d: value above bound reachable", max)
		}
	}
}

func TestAddExhaustive(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(7)
	y := b.Var(5)
	z := b.Add(x, y)
	if z.Max() != 12 {
		t.Fatalf("Add max: got %d, want 12", z.Max())
	}
	for xv := int64(0); xv <= 7; xv++ {
		for yv := int64(0); yv <= 5; yv++ {
			st := s.SolveAssuming([]sat.Lit{b.EqConst(x, xv), b.EqConst(y, yv)})
			if st != sat.Sat {
				t.Fatalf("x=%d y=%d: %v", xv, yv, st)
			}
			if got := ValueOf(z, s.Model()); got != xv+yv {
				t.Fatalf("x=%d y=%d: z=%d", xv, yv, got)
			}
		}
	}
}

func TestMulConst(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(9)
	for _, c := range []int64{0, 1, 2, 3, 5, 10} {
		y := b.MulConst(x, c)
		for xv := int64(0); xv <= 9; xv += 3 {
			if s.SolveAssuming([]sat.Lit{b.EqConst(x, xv)}) != sat.Sat {
				t.Fatalf("pin x=%d failed", xv)
			}
			if got := ValueOf(y, s.Model()); got != c*xv {
				t.Fatalf("c=%d x=%d: got %d, want %d", c, xv, got, c*xv)
			}
		}
	}
}

func TestSumBalanced(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	var terms []Int
	var want int64
	for i := int64(1); i <= 9; i++ {
		terms = append(terms, b.Const(i))
		want += i
	}
	total := b.Sum(terms...)
	if s.Solve() != sat.Sat {
		t.Fatal("want SAT")
	}
	if got := ValueOf(total, s.Model()); got != want {
		t.Fatalf("Sum: got %d, want %d", got, want)
	}
	empty := b.Sum()
	if got := ValueOf(empty, s.Model()); got != 0 {
		t.Fatalf("empty Sum: got %d", got)
	}
}

func TestScaledBool(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	g := sat.Lit(s.NewVar())
	cost := b.ScaledBool(g, 12)
	s.AddClause(g)
	if s.Solve() != sat.Sat {
		t.Fatal("want SAT")
	}
	if got := ValueOf(cost, s.Model()); got != 12 {
		t.Fatalf("ScaledBool true: got %d, want 12", got)
	}

	s2 := sat.NewSolver()
	b2 := New(s2)
	g2 := sat.Lit(s2.NewVar())
	cost2 := b2.ScaledBool(g2, 12)
	s2.AddClause(g2.Flip())
	if s2.Solve() != sat.Sat {
		t.Fatal("want SAT")
	}
	if got := ValueOf(cost2, s2.Model()); got != 0 {
		t.Fatalf("ScaledBool false: got %d, want 0", got)
	}
}

func TestComparisonConstReified(t *testing.T) {
	// For every (value, bound) pair, both the positive and negative
	// phases of the reified comparison must be consistent.
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(10)
	for k := int64(-1); k <= 11; k++ {
		leq := b.LeqConst(x, k)
		geq := b.GeqConst(x, k)
		eq := b.EqConst(x, k)
		for v := int64(0); v <= 10; v++ {
			st := s.SolveAssuming([]sat.Lit{b.EqConst(x, v)})
			if st != sat.Sat {
				t.Fatalf("pin x=%d failed", v)
			}
			m := s.Model()
			litVal := func(l sat.Lit) bool { return m[l.Var()-1] != l.Neg() }
			if litVal(leq) != (v <= k) {
				t.Fatalf("x=%d k=%d: leq=%v", v, k, litVal(leq))
			}
			if litVal(geq) != (v >= k) {
				t.Fatalf("x=%d k=%d: geq=%v", v, k, litVal(geq))
			}
			if litVal(eq) != (v == k) {
				t.Fatalf("x=%d k=%d: eq=%v", v, k, litVal(eq))
			}
		}
	}
}

func TestComparisonTwoVars(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(6)
	y := b.Var(9)
	leq := b.Leq(x, y)
	lt := b.Lt(x, y)
	eq := b.Eq(x, y)
	for xv := int64(0); xv <= 6; xv++ {
		for yv := int64(0); yv <= 9; yv++ {
			st := s.SolveAssuming([]sat.Lit{b.EqConst(x, xv), b.EqConst(y, yv)})
			if st != sat.Sat {
				t.Fatalf("pin failed")
			}
			m := s.Model()
			litVal := func(l sat.Lit) bool { return m[l.Var()-1] != l.Neg() }
			if litVal(leq) != (xv <= yv) {
				t.Fatalf("x=%d y=%d: leq=%v", xv, yv, litVal(leq))
			}
			if litVal(lt) != (xv < yv) {
				t.Fatalf("x=%d y=%d: lt=%v", xv, yv, litVal(lt))
			}
			if litVal(eq) != (xv == yv) {
				t.Fatalf("x=%d y=%d: eq=%v", xv, yv, litVal(eq))
			}
		}
	}
}

func TestBudgetScenario(t *testing.T) {
	// The reasoning engine's use case: sum of conditional costs must fit
	// a budget. 3 optional systems costing 4, 7, 10; budget 12.
	s := sat.NewSolver()
	b := New(s)
	g1, g2, g3 := sat.Lit(s.NewVar()), sat.Lit(s.NewVar()), sat.Lit(s.NewVar())
	total := b.Sum(b.ScaledBool(g1, 4), b.ScaledBool(g2, 7), b.ScaledBool(g3, 10))
	b.Assert(b.LeqConst(total, 12))

	// g1+g2 (11) fits; g2+g3 (17) must not.
	if s.SolveAssuming([]sat.Lit{g1, g2}) != sat.Sat {
		t.Error("4+7 ≤ 12 must be SAT")
	}
	if s.SolveAssuming([]sat.Lit{g2, g3}) != sat.Unsat {
		t.Error("7+10 ≤ 12 must be UNSAT")
	}
	if s.SolveAssuming([]sat.Lit{g1, g2, g3}) != sat.Unsat {
		t.Error("all three must be UNSAT")
	}
}

func TestRandomLinearExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		s := sat.NewSolver()
		b := New(s)
		n := 2 + r.Intn(4)
		vars := make([]Int, n)
		vals := make([]int64, n)
		coefs := make([]int64, n)
		terms := make([]Int, n)
		var want int64
		var assumps []sat.Lit
		for i := 0; i < n; i++ {
			max := int64(1 + r.Intn(30))
			vars[i] = b.Var(max)
			vals[i] = int64(r.Intn(int(max + 1)))
			coefs[i] = int64(r.Intn(6))
			terms[i] = b.MulConst(vars[i], coefs[i])
			want += coefs[i] * vals[i]
			assumps = append(assumps, b.EqConst(vars[i], vals[i]))
		}
		total := b.Sum(terms...)
		if s.SolveAssuming(assumps) != sat.Sat {
			t.Fatalf("trial %d: pinning failed", trial)
		}
		if got := ValueOf(total, s.Model()); got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
	}
}

func TestFromBitsAndBoolAsInt(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	l1, l2 := sat.Lit(s.NewVar()), sat.Lit(s.NewVar())
	x := b.FromBits([]sat.Lit{l1, l2})
	if x.Max() != 3 || x.Width() != 2 {
		t.Fatalf("FromBits: max=%d width=%d", x.Max(), x.Width())
	}
	s.AddClause(l1)
	s.AddClause(l2.Flip())
	if s.Solve() != sat.Sat {
		t.Fatal("want SAT")
	}
	if got := ValueOf(x, s.Model()); got != 1 {
		t.Fatalf("FromBits value: got %d, want 1", got)
	}
	o := b.BoolAsInt(l1)
	if got := ValueOf(o, s.Model()); got != 1 {
		t.Fatalf("BoolAsInt: got %d, want 1", got)
	}
}

func TestPanics(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	for name, fn := range map[string]func(){
		"negative const": func() { b.Const(-1) },
		"negative var":   func() { b.Var(-1) },
		"negative mul":   func() { b.MulConst(b.Const(1), -2) },
		"negative scale": func() { b.ScaledBool(b.True(), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAssertImplies(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(10)
	guard := sat.Lit(s.NewVar())
	b.AssertImplies(guard, b.LeqConst(x, 3))
	if s.SolveAssuming([]sat.Lit{guard, b.EqConst(x, 7)}) != sat.Unsat {
		t.Error("guard must force x ≤ 3")
	}
	if s.SolveAssuming([]sat.Lit{guard.Flip(), b.EqConst(x, 7)}) != sat.Sat {
		t.Error("without guard x=7 must be allowed")
	}
}

// TestRestoreIntAcrossSnapshot exercises the serialization accessors: an
// integer circuit built in one solver is carried across a sat.Snapshot via
// Bits/Max, reattached with Attach+RestoreInt, and must evaluate and
// constrain identically in the restored solver.
func TestRestoreIntAcrossSnapshot(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(20)
	y := b.Var(9)
	sum := b.Add(x, y)
	b.Assert(b.EqConst(x, 13))
	b.Assert(b.EqConst(y, 6))

	restored, err := sat.RestoreSnapshot(s.Snapshot())
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	rb := Attach(restored, b.True())
	rsum := RestoreInt(sum.Bits(), sum.Max())
	if rsum.Max() != sum.Max() || rsum.Width() != sum.Width() {
		t.Fatalf("RestoreInt shape: got max %d width %d, want %d/%d",
			rsum.Max(), rsum.Width(), sum.Max(), sum.Width())
	}
	// New clauses against the restored circuit must behave as in-process.
	rb.Assert(rb.GeqConst(rsum, 19))
	if restored.Solve() != sat.Sat {
		t.Fatal("restored: want SAT (13+6 = 19)")
	}
	if got := ValueOf(rsum, restored.Model()); got != 19 {
		t.Fatalf("restored sum: got %d, want 19", got)
	}
	rb.Assert(rb.GeqConst(rsum, 20))
	if restored.Solve() != sat.Unsat {
		t.Fatal("restored: want UNSAT (sum pinned to 19)")
	}
}

// TestBitsIsACopy guards against aliasing: mutating the returned slice
// must not corrupt the Int.
func TestBitsIsACopy(t *testing.T) {
	s := sat.NewSolver()
	b := New(s)
	x := b.Var(7)
	bits := x.Bits()
	for i := range bits {
		bits[i] = bits[i].Flip()
	}
	pin(b, x, 5)
	if s.Solve() != sat.Sat {
		t.Fatal("want SAT")
	}
	if got := ValueOf(x, s.Model()); got != 5 {
		t.Fatalf("after mutating Bits copy: got %d, want 5", got)
	}
}

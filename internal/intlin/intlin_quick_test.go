package intlin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netarch/internal/sat"
)

// TestQuickLinearCombination is the package's end-to-end property: a
// random linear combination of pinned variables must evaluate to the
// arithmetic result, and every reified comparison against it must agree
// with native Go arithmetic.
func TestQuickLinearCombination(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sat.NewSolver()
		b := New(s)
		n := 1 + r.Intn(4)
		var want int64
		terms := make([]Int, n)
		assumps := make([]sat.Lit, 0, n)
		for i := 0; i < n; i++ {
			max := int64(1 + r.Intn(50))
			val := int64(r.Intn(int(max + 1)))
			coef := int64(r.Intn(7))
			x := b.Var(max)
			terms[i] = b.MulConst(x, coef)
			assumps = append(assumps, b.EqConst(x, val))
			want += coef * val
		}
		total := b.Sum(terms...)
		k := int64(r.Intn(int(total.Max() + 2)))
		leq := b.LeqConst(total, k)
		geq := b.GeqConst(total, k)
		eq := b.EqConst(total, k)
		if s.SolveAssuming(assumps) != sat.Sat {
			return false
		}
		m := s.Model()
		val := func(l sat.Lit) bool { return m[l.Var()-1] != l.Neg() }
		return ValueOf(total, m) == want &&
			val(leq) == (want <= k) &&
			val(geq) == (want >= k) &&
			val(eq) == (want == k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddCommutes checks Add(a,b) and Add(b,a) agree in every model.
func TestQuickAddCommutes(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sat.NewSolver()
		b := New(s)
		x := b.Var(int64(1 + r.Intn(40)))
		y := b.Var(int64(1 + r.Intn(40)))
		ab := b.Add(x, y)
		ba := b.Add(y, x)
		b.Assert(b.Eq(ab, ba))
		// Must be satisfiable for every pinning of x and y.
		xv := int64(r.Intn(int(x.Max() + 1)))
		yv := int64(r.Intn(int(y.Max() + 1)))
		if s.SolveAssuming([]sat.Lit{b.EqConst(x, xv), b.EqConst(y, yv)}) != sat.Sat {
			return false
		}
		m := s.Model()
		return ValueOf(ab, m) == xv+yv && ValueOf(ba, m) == xv+yv
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickComparatorTotality checks that for any two pinned ints exactly
// one of lt / eq / gt holds.
func TestQuickComparatorTotality(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sat.NewSolver()
		b := New(s)
		x := b.Var(int64(1 + r.Intn(30)))
		y := b.Var(int64(1 + r.Intn(30)))
		lt := b.Lt(x, y)
		eq := b.Eq(x, y)
		gt := b.Lt(y, x)
		xv := int64(r.Intn(int(x.Max() + 1)))
		yv := int64(r.Intn(int(y.Max() + 1)))
		if s.SolveAssuming([]sat.Lit{b.EqConst(x, xv), b.EqConst(y, yv)}) != sat.Sat {
			return false
		}
		m := s.Model()
		val := func(l sat.Lit) bool { return m[l.Var()-1] != l.Neg() }
		count := 0
		for _, v := range []bool{val(lt), val(eq), val(gt)} {
			if v {
				count++
			}
		}
		return count == 1 &&
			val(lt) == (xv < yv) && val(eq) == (xv == yv) && val(gt) == (xv > yv)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package netarch is a lightweight automated reasoning framework for
// network architectures — a reproduction of Bothra et al., "Lightweight
// Automated Reasoning for Network Architectures" (HotNets '24).
//
// The framework encodes what the paper calls "rules of thumb": shallow,
// broad facts about deployable systems (network stacks, congestion
// control, monitoring, firewalls, virtual switches, load balancers,
// transports), hardware components, and application workloads — without
// modelling any system's internals. A SAT-based reasoning engine then
// answers architects' questions:
//
//	k := netarch.DefaultCatalog()          // 50+ systems, ~200 hardware specs
//	eng, _ := netarch.NewEngine(k)
//	rep, _ := eng.Synthesize(netarch.Scenario{
//	    Require: []netarch.Property{"congestion_control"},
//	    Context: map[string]bool{"deadline_tight": true},
//	})
//	if rep.Verdict == netarch.Feasible {
//	    fmt.Println(rep.Design.Systems)
//	} else {
//	    fmt.Println(rep.Explanation)       // minimal conflicting facts
//	}
//
// Everything is built on the standard library: the CDCL SAT solver,
// cardinality and integer-arithmetic encodings, conditional partial
// orders, the topology substrate with PFC deadlock analysis, and the
// extraction/checking tooling of the paper's §4 study.
package netarch

import (
	"fmt"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/dsl"
	"netarch/internal/kb"
	"netarch/internal/order"
	"netarch/internal/topo"
)

// Re-exported knowledge-base types. See package kb for field docs.
type (
	// KB is a knowledge base: systems, hardware, workloads, rules, orders.
	KB = kb.KB
	// System is one deployable system encoding (Listing 2 of the paper).
	System = kb.System
	// Hardware is one hardware component encoding (Listing 1).
	Hardware = kb.Hardware
	// Workload is an application from the architect's view (Listing 3).
	Workload = kb.Workload
	// Rule is a free-form predicate-logic fact.
	Rule = kb.Rule
	// Expr is the serializable rule expression tree.
	Expr = kb.Expr
	// Condition is a context-atom literal.
	Condition = kb.Condition
	// OrderSpec is a serialized conditional partial order.
	OrderSpec = kb.OrderSpec
	// Property names an objective a system can solve.
	Property = kb.Property
	// Capability names a boolean hardware feature.
	Capability = kb.Capability
	// Resource names a countable quantity.
	Resource = kb.Resource
	// Role is a deployment slot (network stack, congestion control, …).
	Role = kb.Role
	// HardwareKind classifies hardware (switch, NIC, server).
	HardwareKind = kb.HardwareKind
)

// Re-exported engine types. See package core for details.
type (
	// Engine is the SAT-backed reasoning engine. It is safe for
	// concurrent queries: compilation is amortized through a compiled-
	// base cache and every query solves on a private clone, so repeated
	// or parallel queries over the same scenario shape never recompile.
	// Engine.CacheStats, Engine.SetCacheCapacity and
	// Engine.InvalidateCache observe and control the cache.
	// Engine.SetCacheDir adds a persistent disk tier: frozen bases are
	// snapshotted to versioned, checksummed files and revived on startup,
	// so even a fresh process skips the first compile (corrupt or stale
	// files downgrade to a silent recompile, never a wrong answer);
	// Engine.SetDiskCacheLimit bounds the directory.
	// Enumeration (EnumerateCtx, Enumerate, DisambiguateCtx) itself runs
	// on a pool of cloned solvers — Engine.SetWorkers sizes it (default
	// runtime.GOMAXPROCS(0)) — with results guaranteed independent of the
	// worker count.
	Engine = core.Engine
	// CacheStats reports the engine's compiled-base cache: size,
	// capacity, lifetime hit/miss counters, and — when a cache directory
	// is set — the disk tier's hit/miss/write/evict/corrupt counters.
	CacheStats = core.CacheStats
	// GreedyReasoner is the weak baseline of the §5.2 comparison.
	GreedyReasoner = core.GreedyReasoner
	// Scenario describes one query: context, fleet, requirements, pins.
	Scenario = core.Scenario
	// Design is a concrete architecture (systems + hardware + context).
	Design = core.Design
	// Report is the engine's answer: verdict, witness or explanation.
	Report = core.Report
	// Explanation is a minimal set of conflicting constraint groups.
	Explanation = core.Explanation
	// Objective is one level of a lexicographic optimization goal.
	Objective = core.Objective
	// OptimizeResult carries the optimum design, the achieved objective
	// values, and the proven lower bounds (the bounded-suboptimality
	// bracket when a budget trips mid-search).
	OptimizeResult = core.OptimizeResult
	// OptimizeStrategy selects the MaxSAT descent used by Optimize and
	// Pareto queries (StrategyBinary or StrategyLinear).
	OptimizeStrategy = core.OptimizeStrategy
	// ParetoResult is the non-dominated frontier over several objectives.
	ParetoResult = core.ParetoResult
	// ParetoPoint is one frontier point: objective vector plus witness.
	ParetoPoint = core.ParetoPoint
	// PerformanceBound is a Listing 3-style hard bound against an order.
	PerformanceBound = core.PerformanceBound
	// Verdict is Feasible or Infeasible.
	Verdict = core.Verdict
	// Suggestion is a minimal correction set for an infeasible scenario.
	Suggestion = core.Suggestion
	// Disambiguation reports where the solution space still forks.
	Disambiguation = core.Disambiguation
	// Fork is one undecided role choice in a Disambiguation.
	Fork = core.Fork
)

// Resource-governance types: every query has a *Ctx variant taking a
// context.Context plus a Budget, and degrades gracefully when a budget
// trips. See package core for the degradation contract.
type (
	// Budget bounds wall-clock time and per-phase solver work for one
	// query. The zero value means unbounded.
	Budget = core.Budget
	// BudgetSpent reports the resources a query actually consumed.
	BudgetSpent = core.BudgetSpent
	// ErrResourceExhausted is the typed error returned when a budget
	// trips before a verdict; errors.Is against context.DeadlineExceeded
	// or context.Canceled also works when the context was the cause.
	ErrResourceExhausted = core.ErrResourceExhausted
	// EnumerateResult is a governed enumeration outcome: designs plus an
	// explicit truncation account.
	EnumerateResult = core.EnumerateResult
)

// IsResourceExhausted reports whether err is (or wraps) a resource-
// exhaustion error from a governed query.
func IsResourceExhausted(err error) bool { return core.IsResourceExhausted(err) }

// Query verdicts.
const (
	Feasible   = core.Feasible
	Infeasible = core.Infeasible
)

// Objective kinds for Engine.Optimize.
const (
	MinimizeCost    = core.MinimizeCost
	MinimizeCores   = core.MinimizeCores
	MinimizeSystems = core.MinimizeSystems
	MinimizePower   = core.MinimizePower
	MinimizePorts   = core.MinimizePorts
	PreferOrder     = core.PreferOrder
)

// SliceMode selects the relevance-slicing policy for Engine.SetSliceMode:
// whether compiles run against the scenario's cone of influence (the
// systems, rules, and hardware SKUs that can affect its verdict) instead
// of the full knowledge base. Answers are mode-independent; only compile
// time and base size change.
type SliceMode = core.SliceMode

// Relevance-slicing policies.
const (
	// SliceAuto (the default) slices only when the catalog is large
	// enough for slicing to pay for itself.
	SliceAuto = core.SliceAuto
	// SliceOff always compiles the full knowledge base.
	SliceOff = core.SliceOff
	// SliceOn always compiles the relevance slice.
	SliceOn = core.SliceOn
)

// ParseSliceMode parses the CLI/serve slice-mode spelling: "auto" (or
// empty, the default), "on", and "off".
func ParseSliceMode(s string) (SliceMode, error) { return core.ParseSliceMode(s) }

// MaxSAT descent strategies for Engine.SetOptimizeStrategy.
const (
	// StrategyBinary bisects the objective range (the default): budget
	// trips leave tight two-sided bounds.
	StrategyBinary = core.StrategyBinary
	// StrategyLinear descends SAT-UNSAT: every step improves the witness,
	// but the lower bound stays trivial until the final Unsat.
	StrategyLinear = core.StrategyLinear
)

// ParseObjective parses the CLI/serve spelling of one objective level:
// "cost", "cores", "systems", "power", "ports", "latency", or
// "order:<dimension>".
func ParseObjective(name string) (Objective, error) { return core.ParseObjective(name) }

// ParseOptimizeStrategy parses the CLI/serve strategy spelling: "binary"
// (or empty, the default) and "linear".
func ParseOptimizeStrategy(s string) (OptimizeStrategy, error) {
	return core.ParseOptimizeStrategy(s)
}

// Hardware kinds.
const (
	KindSwitch = kb.KindSwitch
	KindNIC    = kb.KindNIC
	KindServer = kb.KindServer
)

// Topology types for the PFC substrate. See package topo.
type (
	// Topology is a Clos network (leaf-spine or fat-tree).
	Topology = topo.Topology
	// DeadlockReport is the outcome of a PFC safety analysis.
	DeadlockReport = topo.DeadlockReport
	// ResolvedOrder is a conditional partial order resolved under one
	// context (one concrete Figure 1 panel).
	ResolvedOrder = order.Resolved
)

// NewLeafSpine builds a two-tier Clos topology.
func NewLeafSpine(spines, leaves, serversPerLeaf int, coresPerServer int64) (*Topology, error) {
	return topo.NewLeafSpine(spines, leaves, serversPerLeaf, coresPerServer)
}

// NewFatTree builds a k-ary fat-tree topology (k even).
func NewFatTree(k int, coresPerServer int64) (*Topology, error) {
	return topo.NewFatTree(k, coresPerServer)
}

// ResolveOrder resolves one of the knowledge base's partial-order
// dimensions under the given context atoms, registering extraNodes so
// incomparable items still appear.
func ResolveOrder(k *KB, dimension string, ctx map[string]bool, extraNodes ...string) (*ResolvedOrder, error) {
	spec := k.OrderByDimension(dimension)
	if spec == nil {
		return nil, fmt.Errorf("netarch: unknown order dimension %q", dimension)
	}
	return spec.Resolve(ctx, extraNodes...)
}

// Fig1Stacks lists the six network stacks drawn in the paper's Figure 1.
func Fig1Stacks() []string { return catalog.Fig1Stacks() }

// RacksOf builds a Scenario.RackServers map: every named rack holds
// serversPerRack servers of the selected SKU.
func RacksOf(racks []string, serversPerRack int) map[string]int {
	return core.RacksOf(racks, serversPerRack)
}

// ParseDSL parses a knowledge base written in the textual encoding DSL
// (see internal/dsl for the grammar) and validates it.
func ParseDSL(src string) (*KB, error) { return dsl.ParseString(src) }

// FormatDSL renders a knowledge base in the DSL syntax; ParseDSL
// round-trips it.
func FormatDSL(k *KB) string { return dsl.Format(k) }

// NewEngine validates the knowledge base and returns a reasoning engine.
func NewEngine(k *KB) (*Engine, error) { return core.New(k) }

// NewGreedy returns the deliberately weak greedy baseline (§5.2).
func NewGreedy(k *KB) *GreedyReasoner { return core.NewGreedy(k) }

// DefaultCatalog returns the seed knowledge compendium: 50+ system
// encodings across the paper's seven roles, ~200 hardware specs, the
// Figure 1 partial orders, and the expert rules.
func DefaultCatalog() *KB { return catalog.Default() }

// CaseStudy returns DefaultCatalog extended with the §2.3 ML-inference
// workload (Listing 3).
func CaseStudy() *KB { return catalog.CaseStudy() }

// ScaledCatalog returns the seed compendium grown to approximately
// total hardware SKUs (vendor families × speed grades × port counts ×
// firmware variants) plus ~24 derived workload profiles — the corpus
// behind the scale-out benchmarks. The seed catalog is always an exact
// prefix, so every seed query runs unchanged against a scaled KB.
func ScaledCatalog(total int) *KB { return catalog.ScaledCatalog(total) }

module netarch

go 1.22

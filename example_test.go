package netarch_test

import (
	"fmt"
	"log"

	"netarch"
)

// ExampleNewEngine shows the basic query flow: load the compendium, ask
// whether a compliant design exists under environmental constraints.
func ExampleNewEngine() {
	eng, err := netarch.NewEngine(netarch.DefaultCatalog())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Synthesize(netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
		Context: map[string]bool{"deadline_tight": true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Verdict)
	// Output: FEASIBLE
}

// ExampleEngine_Explain shows the minimal-conflict explanation for an
// impossible ask — here, the paper's PFC-with-flooding incident.
func ExampleEngine_Explain() {
	eng, err := netarch.NewEngine(netarch.DefaultCatalog())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := eng.Explain(netarch.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range ex.Conflicts {
		if c.Name == "rule:pfc_no_flooding" {
			fmt.Println("conflict includes the PFC rule")
		}
	}
	// Output: conflict includes the PFC rule
}

// ExampleResolveOrder resolves the Figure 1 throughput ordering under a
// low-link-rate context.
func ExampleResolveOrder() {
	k := netarch.DefaultCatalog()
	r, err := netarch.ResolveOrder(k, "throughput",
		map[string]bool{"load_ge_40gbps": false}, netarch.Fig1Stacks()...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Better("linux", "netchannel"))
	fmt.Println(r.Better("netchannel", "linux"))
	// Output:
	// true
	// false
}

// ExampleParseDSL parses a contributed system encoding in the textual
// format and merges it into the compendium.
func ExampleParseDSL() {
	contrib, err := netarch.ParseDSL(`
system myflowmon {
    role: monitoring
    solves: flow_telemetry
    requires switch: P4_PROGRAMMABLE
    resource p4_stages: 4
}
`)
	if err != nil {
		log.Fatal(err)
	}
	k := netarch.DefaultCatalog()
	before := len(k.Systems)
	if err := k.Merge(contrib); err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(k.Systems) - before)
	// Output: 1
}

// ExampleNewFatTree runs the PFC safety analysis on a fat-tree.
func ExampleNewFatTree() {
	t, err := netarch.NewFatTree(4, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t.PFCDeadlockCheck(false).Deadlock)
	fmt.Println(t.PFCDeadlockCheck(true).Deadlock)
	// Output:
	// false
	// true
}

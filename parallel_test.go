package netarch_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"netarch"
	"netarch/internal/catalog"
)

// This file is the facade-level differential for parallel enumeration:
// for the §5.1 case-study queries, EnumerateCtx must return byte-identical
// Designs, Truncated, and Reason whatever the worker count. Spent is the
// one field the determinism contract lets vary. `make verify` runs these
// tests explicitly.

// caseStudyAllKB mirrors the §5.1 experiment harness: the case-study
// catalog plus the batch-analytics and storage workloads of Q1/Q3.
func caseStudyAllKB() *netarch.KB {
	k := netarch.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	return k
}

// sec51Scenarios builds the enumeration scenarios of the §5.1 queries.
// Q1's grown scenario freezes the server SKU at the baseline cost
// optimum, exactly as the experiment does.
func sec51Scenarios(t *testing.T, eng *netarch.Engine) map[string]netarch.Scenario {
	t.Helper()
	base, err := eng.Optimize(netarch.Scenario{
		Workloads: []string{"inference_app"},
	}, []netarch.Objective{{Kind: netarch.MinimizeCost}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Verdict != netarch.Feasible {
		t.Fatalf("Q1 baseline infeasible: %v", base.Explanation)
	}
	frozenServer := base.Design.Hardware[netarch.KindServer]
	return map[string]netarch.Scenario{
		"q1-baseline": {Workloads: []string{"inference_app"}},
		"q1-grown": {
			Workloads:      []string{"inference_app", "batch_analytics", "storage_backend"},
			PinnedHardware: map[netarch.HardwareKind]string{netarch.KindServer: frozenServer},
			Context:        map[string]bool{"pfc_enabled": true},
			NumServers:     128,
		},
		"q2-monitoring": {
			Workloads: []string{"inference_app"},
			Require:   []netarch.Property{"flow_telemetry", "detect_queue_length"},
		},
		"q2-sonata-pinned": {
			Workloads:     []string{"inference_app"},
			Require:       []netarch.Property{"flow_telemetry", "detect_queue_length"},
			PinnedSystems: []string{"sonata"},
		},
		"q3-cxl-off": {
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": false},
		},
		"q3-cxl-on": {
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": true},
		},
	}
}

// assertEnumEqual compares two enumeration results under the determinism
// contract: everything except Spent.
func assertEnumEqual(t *testing.T, name string, workers int, want, got *netarch.EnumerateResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Designs, want.Designs) {
		t.Errorf("%s workers=%d: Designs diverge from sequential", name, workers)
	}
	if got.Truncated != want.Truncated || got.Reason != want.Reason {
		t.Errorf("%s workers=%d: truncation diverges: got (%v,%q), want (%v,%q)",
			name, workers, got.Truncated, got.Reason, want.Truncated, want.Reason)
	}
	if (got.Exhausted == nil) != (want.Exhausted == nil) {
		t.Errorf("%s workers=%d: Exhausted nil-ness diverges", name, workers)
	}
}

func TestEnumerateParallelMatchesSequential(t *testing.T) {
	eng, err := netarch.NewEngine(caseStudyAllKB())
	if err != nil {
		t.Fatal(err)
	}
	scenarios := sec51Scenarios(t, eng)
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	ctx := context.Background()
	for _, name := range names {
		sc := scenarios[name]
		for _, max := range []int{3, 12} {
			eng.SetWorkers(1)
			want, err := eng.EnumerateCtx(ctx, sc, max, netarch.Budget{})
			if err != nil {
				t.Fatalf("%s max=%d sequential: %v", name, max, err)
			}
			for _, w := range []int{2, 8} {
				eng.SetWorkers(w)
				got, err := eng.EnumerateCtx(ctx, sc, max, netarch.Budget{})
				if err != nil {
					t.Fatalf("%s max=%d workers=%d: %v", name, max, w, err)
				}
				assertEnumEqual(t, name, w, want, got)
			}
		}
	}
}

// constrainedForbid shrinks the design space of sc to the systems that
// appear in a handful of its own witness designs, forbidding everything
// else — guaranteed feasible, provably small, so a complete enumeration
// (Truncated=false) is cheap and the complete-path determinism can be
// checked end to end.
func constrainedForbid(t *testing.T, eng *netarch.Engine, sc netarch.Scenario) []string {
	t.Helper()
	eng.SetWorkers(1)
	seed, err := eng.EnumerateCtx(context.Background(), sc, 3, netarch.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seed.Designs) < 2 {
		t.Fatalf("seed enumeration found %d classes; space too small to constrain", len(seed.Designs))
	}
	allowed := map[string]bool{}
	for _, d := range seed.Designs {
		for _, s := range d.Systems {
			allowed[s] = true
		}
	}
	k := caseStudyAllKB()
	var forbid []string
	for _, s := range k.Systems {
		if !allowed[s.Name] {
			forbid = append(forbid, s.Name)
		}
	}
	sort.Strings(forbid)
	if len(forbid) == 0 {
		t.Fatal("constrained space kept everything; test is vacuous")
	}
	return forbid
}

func TestEnumerateParallelCompleteSpace(t *testing.T) {
	eng, err := netarch.NewEngine(caseStudyAllKB())
	if err != nil {
		t.Fatal(err)
	}
	base := netarch.Scenario{Workloads: []string{"inference_app"}, NumServers: 64}
	sc := base
	sc.ForbiddenSystems = constrainedForbid(t, eng, base)
	ctx := context.Background()
	eng.SetWorkers(1)
	want, err := eng.EnumerateCtx(ctx, sc, 1000, netarch.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Truncated {
		t.Fatalf("constrained space must enumerate completely, got %d classes and %q",
			len(want.Designs), want.Reason)
	}
	if len(want.Designs) < 2 {
		t.Fatalf("constrained space too small to exercise the pool: %d classes", len(want.Designs))
	}
	for _, w := range []int{2, 8} {
		eng.SetWorkers(w)
		got, err := eng.EnumerateCtx(ctx, sc, 1000, netarch.Budget{})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertEnumEqual(t, "complete-space", w, want, got)
	}
}

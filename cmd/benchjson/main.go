// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON object on stdout mapping each benchmark name to its
// measurements:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson > BENCH_PR2.json
//
// Output shape (keys sorted, so reruns diff cleanly):
//
//	{
//	  "BenchmarkCompile": {"iterations": 16, "ns_per_op": 70552719, "b_per_op": 26478113, "allocs_per_op": 378059},
//	  ...
//	}
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. A benchmark that appears more than once (e.g. -count>1)
// keeps the minimum ns/op run, the conventional "best of N" summary.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. B/op and allocs/op are
// -1 when the run lacked -benchmem.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op  789 B/op  12 allocs/op"
// line. The trailing -N GOMAXPROCS suffix is stripped from the name so
// results compare across machines.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iterations: iters, BPerOp: -1, AllocsPerOp: -1}
	// The remainder alternates value/unit pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if !seenNs {
		return "", result{}, false
	}
	return name, r, true
}

func main() {
	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, dup := results[name]; !dup || r.NsPerOp < prev.NsPerOp {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)

	// Emit by hand to keep the keys in sorted order (encoding/json sorts
	// map keys too, but building the document explicitly keeps the format
	// obvious and the indentation stable).
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "{")
	for i, n := range names {
		blob, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", n, blob, comma)
	}
	fmt.Fprintln(out, "}")
}

// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON object on stdout mapping each benchmark name to its
// measurements:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson > BENCH_PR2.json
//
// Output shape (keys sorted, so reruns diff cleanly):
//
//	{
//	  "BenchmarkCompile": {"iterations": 16, "ns_per_op": 70552719, "b_per_op": 26478113, "allocs_per_op": 378059},
//	  ...
//	}
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. A benchmark that appears more than once (e.g. -count>1)
// keeps the minimum ns/op run, the conventional "best of N" summary.
//
// With -diff OLD.json, instead of emitting JSON it compares the run on
// stdin against a previously committed baseline and prints a
// per-benchmark delta table (ns/op, B/op, allocs/op, each with a
// percentage). Benchmarks present on only one side are listed as added
// or removed. `make bench-diff` wires this against the newest committed
// BENCH_*.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. B/op and allocs/op are
// -1 when the run lacked -benchmem. Extra collects custom b.ReportMetric
// units (qps, p99_ms, shed_rate, ...) keyed by unit name.
type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op  789 B/op  12 allocs/op"
// line. The trailing -N GOMAXPROCS suffix is stripped from the name so
// results compare across machines.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iterations: iters, BPerOp: -1, AllocsPerOp: -1}
	// The remainder alternates value/unit pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// A custom b.ReportMetric unit (qps, p99_ms, shed_rate, ...).
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if !seenNs {
		return "", result{}, false
	}
	return name, r, true
}

func main() {
	diffBase := flag.String("diff", "", "baseline BENCH_*.json to diff the run on stdin against")
	flag.Parse()

	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, dup := results[name]; !dup || r.NsPerOp < prev.NsPerOp {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *diffBase != "" {
		if err := printDiff(*diffBase, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)

	// Emit by hand to keep the keys in sorted order (encoding/json sorts
	// map keys too, but building the document explicitly keeps the format
	// obvious and the indentation stable).
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "{")
	for i, n := range names {
		blob, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", n, blob, comma)
	}
	fmt.Fprintln(out, "}")
}

// printDiff renders a per-benchmark delta table of the new results
// against the baseline file. Negative percentages are improvements for
// every column (less time, fewer bytes, fewer allocations).
func printDiff(basePath string, new map[string]result) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	old := make(map[string]result)
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}

	names := make([]string, 0, len(new)+len(old))
	for n := range new {
		names = append(names, n)
	}
	for n := range old {
		if _, ok := new[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "vs %s:\n", basePath)
	fmt.Fprintf(out, "%-55s %25s %25s %25s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, n := range names {
		nr, inNew := new[n]
		or, inOld := old[n]
		switch {
		case !inOld:
			fmt.Fprintf(out, "%-55s %25s\n", n, "(added)")
		case !inNew:
			fmt.Fprintf(out, "%-55s %25s\n", n, "(removed)")
		default:
			fmt.Fprintf(out, "%-55s %25s %25s %25s\n", n,
				deltaCol(or.NsPerOp, nr.NsPerOp),
				deltaCol(float64(or.BPerOp), float64(nr.BPerOp)),
				deltaCol(float64(or.AllocsPerOp), float64(nr.AllocsPerOp)))
			printExtraDiff(out, or.Extra, nr.Extra)
		}
	}
	return nil
}

// printExtraDiff renders one indented sub-row per custom metric unit
// present on either side (qps, p99_ms, shed_rate, ...).
func printExtraDiff(out *bufio.Writer, old, new map[string]float64) {
	units := make([]string, 0, len(old)+len(new))
	for u := range old {
		units = append(units, u)
	}
	for u := range new {
		if _, ok := old[u]; !ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		ov, inOld := old[u]
		nv, inNew := new[u]
		switch {
		case !inOld:
			fmt.Fprintf(out, "  %-53s %25s\n", u, fmt.Sprintf("(added) %s", humanize(nv)))
		case !inNew:
			fmt.Fprintf(out, "  %-53s %25s\n", u, "(removed)")
		default:
			fmt.Fprintf(out, "  %-53s %25s\n", u, deltaCol(ov, nv))
		}
	}
}

// deltaCol formats "old -> new (+x.x%)" for one measurement column;
// missing values (-1, from runs without -benchmem) render as "-".
func deltaCol(old, new float64) string {
	if old < 0 || new < 0 {
		return "-"
	}
	pct := ""
	if old > 0 {
		pct = fmt.Sprintf(" (%+.1f%%)", 100*(new-old)/old)
	}
	return fmt.Sprintf("%s -> %s%s", humanize(old), humanize(new), pct)
}

// humanize renders a count with k/M/G suffixes so wide columns stay
// readable; small integers print exactly.
func humanize(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

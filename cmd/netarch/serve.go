package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"netarch"
	"netarch/internal/serve"
)

// cmdServe runs the long-lived HTTP/JSON query service (DESIGN.md §12).
// The scenario flags define the prewarm shape: the server compiles (or
// revives from -cache-dir) that base before reporting ready, so the
// first real query already hits a warm pool. SIGINT/SIGTERM trigger a
// graceful drain; a clean drain exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a port)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrently executing queries (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue length (0 = 2x max-inflight)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on shutdown")
	clonePool := fs.Int("clone-pool", 0, "pre-cloned solvers per base (0 = max-inflight, <0 = off)")
	portfolio := fs.Int("portfolio", 0, "diversified solver race width for decision queries (<=1 = off)")
	sliceMode := fs.String("slice", "auto", "relevance-sliced compilation: on, off, or auto")
	maxEnum := fs.Int("max-enumerate", 64, "ceiling on per-request enumeration limits")
	chaosSpec := fs.String("chaos", "", "fault-injection profile: seed=N,rate=F[,event=solve|conflict|both]")
	kbFile := fs.String("kb", "", "knowledge-base file (JSON or DSL; default: built-in case study)")
	retryAfter := fs.Duration("retry-after", 0, "backoff hint on 429/503 rejections (0 = 1s)")
	getScenario, _ := scenarioFlags(fs)
	getBudget := budgetFlags(fs)
	setWorkers := workersFlag(fs)
	setCacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := getScenario()
	if err != nil {
		return err
	}
	var chaos *serve.Chaos
	if *chaosSpec != "" {
		if chaos, err = serve.ParseChaos(*chaosSpec); err != nil {
			return err
		}
	}
	slice, err := netarch.ParseSliceMode(*sliceMode)
	if err != nil {
		return err
	}

	k := netarch.CaseStudy()
	if *kbFile != "" {
		data, err := os.ReadFile(*kbFile)
		if err != nil {
			return err
		}
		if k, err = loadAnyKB(data); err != nil {
			return err
		}
	}
	eng, err := netarch.NewEngine(k)
	if err != nil {
		return err
	}
	setWorkers(eng)
	if err := setCacheDir(eng); err != nil {
		return err
	}

	inFlight := *maxInFlight
	if inFlight <= 0 {
		inFlight = runtime.GOMAXPROCS(0)
	}
	srv, err := serve.New(serve.Config{
		Engine:       eng,
		Addr:         *addr,
		MaxInFlight:  inFlight,
		QueueDepth:   *queueDepth,
		Policy:       getBudget(),
		MaxEnumerate: *maxEnum,
		DrainTimeout: *drainTimeout,
		RetryAfter:   *retryAfter,
		Prewarm:      []netarch.Scenario{sc},
		ClonePool:    *clonePool,
		Portfolio:    *portfolio,
		Slice:        slice,
		Chaos:        chaos,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the context; Run then drains in-flight
	// requests under -drain-timeout and returns nil on a clean drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx)
}

// cmdReload ships a knowledge-base file (JSON or DSL, "-" for stdin) to a
// running server's /v1/admin/reload endpoint. The server delta-recompiles
// its warm bases in place — in-flight queries finish on the old catalog,
// queries admitted after the swap see the new one, and nothing is shed.
func cmdReload(args []string) error {
	fs := flag.NewFlagSet("reload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address of the running netarch serve instance")
	timeout := fs.Duration("timeout", 2*time.Minute, "reload request deadline (covers the recompiles)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: netarch reload [-addr host:port] <kbfile|->")
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	// Parse locally first: catches syntax and validation problems without
	// a round trip, and normalizes DSL input to the JSON the wire wants.
	k, err := loadAnyKB(data)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := k.Save(&body); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+*addr+"/v1/admin/reload", &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb serve.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Kind != "" {
			return fmt.Errorf("reload rejected (%s): %s", eb.Error.Kind, eb.Error.Detail)
		}
		return fmt.Errorf("reload failed: status %d: %s", resp.StatusCode, raw)
	}
	var rr serve.ReloadResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return fmt.Errorf("reload: malformed response: %w", err)
	}
	fmt.Printf("reloaded: %d changes, %d bases updated (%d dropped), %d shards reused / %d converted, %d profiles carried, %d snapshots rewritten, %dms\n",
		rr.Changes, rr.BasesUpdated, rr.BasesDropped, rr.ShardsReused, rr.ShardsConverted,
		rr.ProfilesCarried, rr.SnapshotsRewritten, rr.ElapsedMS)
	return nil
}

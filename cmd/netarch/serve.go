package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"netarch"
	"netarch/internal/serve"
)

// cmdServe runs the long-lived HTTP/JSON query service (DESIGN.md §12).
// The scenario flags define the prewarm shape: the server compiles (or
// revives from -cache-dir) that base before reporting ready, so the
// first real query already hits a warm pool. SIGINT/SIGTERM trigger a
// graceful drain; a clean drain exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a port)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrently executing queries (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue length (0 = 2x max-inflight)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on shutdown")
	clonePool := fs.Int("clone-pool", 0, "pre-cloned solvers per base (0 = max-inflight, <0 = off)")
	portfolio := fs.Int("portfolio", 0, "diversified solver race width for decision queries (<=1 = off)")
	maxEnum := fs.Int("max-enumerate", 64, "ceiling on per-request enumeration limits")
	chaosSpec := fs.String("chaos", "", "fault-injection profile: seed=N,rate=F[,event=solve|conflict|both]")
	getScenario, _ := scenarioFlags(fs)
	getBudget := budgetFlags(fs)
	setWorkers := workersFlag(fs)
	setCacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := getScenario()
	if err != nil {
		return err
	}
	var chaos *serve.Chaos
	if *chaosSpec != "" {
		if chaos, err = serve.ParseChaos(*chaosSpec); err != nil {
			return err
		}
	}

	eng, err := netarch.NewEngine(netarch.CaseStudy())
	if err != nil {
		return err
	}
	setWorkers(eng)
	if err := setCacheDir(eng); err != nil {
		return err
	}

	inFlight := *maxInFlight
	if inFlight <= 0 {
		inFlight = runtime.GOMAXPROCS(0)
	}
	srv, err := serve.New(serve.Config{
		Engine:       eng,
		Addr:         *addr,
		MaxInFlight:  inFlight,
		QueueDepth:   *queueDepth,
		Policy:       getBudget(),
		MaxEnumerate: *maxEnum,
		DrainTimeout: *drainTimeout,
		Prewarm:      []netarch.Scenario{sc},
		ClonePool:    *clonePool,
		Portfolio:    *portfolio,
		Chaos:        chaos,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the context; Run then drains in-flight
	// requests under -drain-timeout and returns nil on a clean drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx)
}

package main

import (
	"context"
	"syscall"
	"testing"
	"time"

	"netarch"
)

// TestCmdSolveBudgetTripped pins the exit-4 path the signal handler
// shares: a starvation budget trips before a verdict, the command
// returns a typed resource-exhaustion error, and run() maps exactly that
// error class to exit code 4.
func TestCmdSolveBudgetTripped(t *testing.T) {
	err := cmdSolve([]string{"-require", "congestion_control", "-timeout", "1ns"}, "synth")
	if err == nil {
		t.Fatal("1ns budget did not trip")
	}
	if !netarch.IsResourceExhausted(err) {
		t.Fatalf("budget trip is not a typed exhaustion error: %v", err)
	}
}

// TestQueryContextSignal pins the one-shot signal wiring: SIGINT cancels
// the query context (queries then stop at the next solver boundary and
// surface as "canceled" exhaustion errors → exit 4). NotifyContext
// consumes the signal, so the test process survives.
func TestQueryContextSignal(t *testing.T) {
	ctx, stop := queryContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
		if ctx.Err() != context.Canceled {
			t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the query context")
	}
}

// TestCmdServeBadFlags pins serve's flag validation error paths.
func TestCmdServeBadFlags(t *testing.T) {
	if err := cmdServe([]string{"-chaos", "rate=2.0"}); err == nil {
		t.Error("chaos rate 2.0 must be rejected")
	}
	if err := cmdServe([]string{"-chaos", "flavor=spicy"}); err == nil {
		t.Error("unknown chaos key must be rejected")
	}
	if err := cmdServe([]string{"-addr", "not:a:valid:addr:at:all"}); err == nil {
		t.Error("unlistenable address must be rejected")
	}
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"netarch"
	"netarch/internal/kb"
	"netarch/internal/serve"
)

// TestCmdSolveBudgetTripped pins the exit-4 path the signal handler
// shares: a starvation budget trips before a verdict, the command
// returns a typed resource-exhaustion error, and run() maps exactly that
// error class to exit code 4.
func TestCmdSolveBudgetTripped(t *testing.T) {
	err := cmdSolve([]string{"-require", "congestion_control", "-timeout", "1ns"}, "synth")
	if err == nil {
		t.Fatal("1ns budget did not trip")
	}
	if !netarch.IsResourceExhausted(err) {
		t.Fatalf("budget trip is not a typed exhaustion error: %v", err)
	}
}

// TestQueryContextSignal pins the one-shot signal wiring: SIGINT cancels
// the query context (queries then stop at the next solver boundary and
// surface as "canceled" exhaustion errors → exit 4). NotifyContext
// consumes the signal, so the test process survives.
func TestQueryContextSignal(t *testing.T) {
	ctx, stop := queryContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
		if ctx.Err() != context.Canceled {
			t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the query context")
	}
}

// TestCmdServeBadFlags pins serve's flag validation error paths.
func TestCmdServeBadFlags(t *testing.T) {
	if err := cmdServe([]string{"-chaos", "rate=2.0"}); err == nil {
		t.Error("chaos rate 2.0 must be rejected")
	}
	if err := cmdServe([]string{"-chaos", "flavor=spicy"}); err == nil {
		t.Error("unknown chaos key must be rejected")
	}
	if err := cmdServe([]string{"-addr", "not:a:valid:addr:at:all"}); err == nil {
		t.Error("unlistenable address must be rejected")
	}
}

// TestCmdReload drives the reload client against a live in-process
// server: a DSL file on disk round-trips to JSON on the wire, the server
// swaps catalogs, and the client's error paths (bad usage, unreadable
// file, no server) all surface as errors rather than panics.
func TestCmdReload(t *testing.T) {
	eng, err := netarch.NewEngine(netarch.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Engine:  eng,
		Addr:    "127.0.0.1:0",
		Prewarm: []netarch.Scenario{{Workloads: []string{"inference_app"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// Ship the case study (as JSON) with one extra rule.
	k := netarch.CaseStudy()
	k.Rules = append(k.Rules, kb.Rule{
		Name: "cli_reload_marker",
		Expr: kb.Implies(kb.CtxAtom("cli_reload"), kb.TrueExpr()),
	})
	kbFile := filepath.Join(t.TempDir(), "next.json")
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(kbFile, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdReload([]string{"-addr", srv.Addr(), kbFile}); err != nil {
		t.Fatalf("reload against live server: %v", err)
	}

	// Error paths.
	if err := cmdReload([]string{"-addr", srv.Addr()}); err == nil {
		t.Error("missing file argument must be a usage error")
	}
	if err := cmdReload([]string{"-addr", srv.Addr(), "/nonexistent/kb.json"}); err == nil {
		t.Error("unreadable file must error")
	}
	if err := cmdReload([]string{"-addr", "127.0.0.1:1", "-timeout", "2s", kbFile}); err == nil {
		t.Error("reload with no server listening must error")
	}
}

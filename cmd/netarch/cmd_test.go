package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() {
		errCh <- fn()
		w.Close()
	}()
	data, readErr := io.ReadAll(r)
	os.Stdout = old
	if readErr != nil {
		t.Fatal(readErr)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("command failed: %v", err)
	}
	return string(data)
}

func TestCmdCatalogStats(t *testing.T) {
	out := capture(t, func() error { return cmdCatalog([]string{"stats"}) })
	for _, want := range []string{"systems:", "hardware:", "spec size:", "network_stack"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q", want)
		}
	}
}

func TestCmdCatalogSystems(t *testing.T) {
	out := capture(t, func() error { return cmdCatalog([]string{"systems"}) })
	if !strings.Contains(out, "simon") || !strings.Contains(out, "congestion_control:") {
		t.Errorf("systems listing incomplete")
	}
}

func TestCmdCatalogHardware(t *testing.T) {
	out := capture(t, func() error { return cmdCatalog([]string{"hardware"}) })
	if !strings.Contains(out, "Cisco Catalyst 9500-40X") {
		t.Error("hardware listing missing the Listing 1 SKU")
	}
}

func TestCmdCatalogExportRoundTrip(t *testing.T) {
	jsonOut := capture(t, func() error { return cmdCatalog([]string{"export"}) })
	if !strings.HasPrefix(strings.TrimSpace(jsonOut), "{") {
		t.Error("export must emit JSON")
	}
	dslOut := capture(t, func() error { return cmdCatalog([]string{"export-dsl"}) })
	if !strings.Contains(dslOut, "system linux {") {
		t.Error("export-dsl must emit DSL")
	}
	if err := cmdCatalog([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand must error")
	}
}

func TestCmdViz(t *testing.T) {
	out := capture(t, func() error { return cmdViz([]string{"throughput"}) })
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "netchannel") {
		t.Errorf("viz output wrong:\n%s", out)
	}
	if err := cmdViz([]string{"nope"}); err == nil {
		t.Error("unknown dimension must error")
	}
	if err := cmdViz(nil); err == nil {
		t.Error("missing dimension must error")
	}
}

func TestCmdPFC(t *testing.T) {
	out := capture(t, func() error {
		return cmdPFC([]string{"-topo", "leafspine:2x2", "-flooding"})
	})
	if !strings.Contains(out, "DEADLOCK") {
		t.Errorf("flooded leaf-spine must deadlock:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdPFC([]string{"-topo", "fattree:4"})
	})
	if !strings.Contains(out, "no PFC deadlock") {
		t.Errorf("clean fat-tree must be safe:\n%s", out)
	}
	for _, bad := range [][]string{
		{"-topo", "ring:3"}, {"-topo", "leafspine:x"}, {"-topo", "fattree:x"},
	} {
		if err := cmdPFC(bad); err == nil {
			t.Errorf("bad topo %v must error", bad)
		}
	}
}

func TestCmdKBValidateAndConvert(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.dsl")
	src := "system x {\n    role: monitoring\n    solves: p\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return cmdKB([]string{"validate", path}) })
	if !strings.Contains(out, "valid: 1 systems") {
		t.Errorf("validate output wrong: %s", out)
	}
	jsonOut := capture(t, func() error { return cmdKB([]string{"to-json", path}) })
	if !strings.Contains(jsonOut, `"name": "x"`) {
		t.Errorf("to-json wrong: %s", jsonOut)
	}
	jsonPath := filepath.Join(dir, "kb.json")
	if err := os.WriteFile(jsonPath, []byte(jsonOut), 0o644); err != nil {
		t.Fatal(err)
	}
	dslOut := capture(t, func() error { return cmdKB([]string{"to-dsl", jsonPath}) })
	if !strings.Contains(dslOut, "system x {") {
		t.Errorf("to-dsl wrong: %s", dslOut)
	}
	if err := cmdKB([]string{"validate"}); err == nil {
		t.Error("missing file arg must error")
	}
	if err := cmdKB([]string{"bogus", path}); err == nil {
		t.Error("unknown subcommand must error")
	}
}

func TestCmdKBDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.dsl")
	b := filepath.Join(dir, "b.dsl")
	os.WriteFile(a, []byte("system x {\n    role: monitoring\n}\n"), 0o644)
	os.WriteFile(b, []byte("system x {\n    role: monitoring\n}\nsystem y {\n    role: monitoring\n}\n"), 0o644)
	out := capture(t, func() error { return cmdKB([]string{"diff", a, b}) })
	if !strings.Contains(out, `added system "y"`) {
		t.Errorf("diff output wrong: %s", out)
	}
	if err := cmdKB([]string{"diff", a}); err == nil {
		t.Error("diff needs two files")
	}
}

func TestCmdExtract(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.txt")
	os.WriteFile(path, []byte("Model Name: Test Switch\nDevice Class: Ethernet Switch\nECN supported?: Yes\n"), 0o644)
	out := capture(t, func() error { return cmdExtract([]string{path}) })
	if !strings.Contains(out, `"name": "Test Switch"`) || !strings.Contains(out, "ECN") {
		t.Errorf("extract output wrong: %s", out)
	}
	if err := cmdExtract(nil); err == nil {
		t.Error("missing arg must error")
	}
}

func TestCmdExperimentsSingle(t *testing.T) {
	out := capture(t, func() error { return cmdExperiments([]string{"L1"}) })
	if !strings.Contains(out, "SHAPE-MATCH") || !strings.Contains(out, "Cisco") {
		t.Errorf("experiment output wrong:\n%s", out)
	}
	if err := cmdExperiments([]string{"nope"}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestCmdSolveModes(t *testing.T) {
	out := capture(t, func() error {
		return cmdSolve([]string{"-require", "congestion_control"}, "synth")
	})
	if !strings.Contains(out, "FEASIBLE") || !strings.Contains(out, "systems:") {
		t.Errorf("synth output wrong:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdSolve([]string{"-context", "pfc_enabled=true,flooding_enabled=true"}, "explain")
	})
	if !strings.Contains(out, "pfc_no_flooding") {
		t.Errorf("explain output wrong:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdSolve([]string{"-context", "pfc_enabled=true,flooding_enabled=true"}, "suggest")
	})
	if !strings.Contains(out, "relax:") {
		t.Errorf("suggest output wrong:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdSolve([]string{"-require", "congestion_control", "-objectives", "systems,cost"}, "optimize")
	})
	if !strings.Contains(out, "objective[0] minimize_systems") {
		t.Errorf("optimize output wrong:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdSolve([]string{"-md", "-require", "congestion_control"}, "synth")
	})
	if !strings.Contains(out, "# Network architecture reasoning report") {
		t.Errorf("markdown synth output wrong:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdSolve([]string{"-require", "congestion_control"}, "disambiguate")
	})
	if !strings.Contains(out, "design classes") {
		t.Errorf("disambiguate output wrong:\n%s", out)
	}
}

func TestCmdCheckFlow(t *testing.T) {
	out := capture(t, func() error {
		return cmdCheck([]string{
			"-systems", "linux,cubic,ecmp,tcp,ovs,pingmesh,simon",
			"-switch", "Aristo EX-32x100G",
			"-nic", "Marvella SoC-100G",
			"-server", "Suprima HD-128c",
			"-workloads", "inference_app",
		})
	})
	if !strings.Contains(out, "FEASIBLE") && !strings.Contains(out, "INFEASIBLE") {
		t.Errorf("check output wrong:\n%s", out)
	}
}

func TestCmdMulti(t *testing.T) {
	out := capture(t, func() error {
		return cmdMulti([]string{"-rounds", "2", "-require", "congestion_control"})
	})
	for _, want := range []string{"round 1:", "round 2:", "FEASIBLE", "cache:", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi output missing %q:\n%s", want, out)
		}
	}
	// Two rounds of synth+explain+optimize over one shape: one compile,
	// the rest served from the cache.
	if !strings.Contains(out, "1 bases cached") || !strings.Contains(out, "1 misses") {
		t.Errorf("multi should compile exactly one base:\n%s", out)
	}
}

func TestCmdSolveCacheStatsFlag(t *testing.T) {
	out := capture(t, func() error {
		return cmdSolve([]string{"-require", "congestion_control", "-cache-stats"}, "synth")
	})
	if !strings.Contains(out, "cache:") || !strings.Contains(out, "misses") {
		t.Errorf("synth -cache-stats should print cache counters:\n%s", out)
	}
}

// TestCmdSolveCacheDir runs the same synth twice against one -cache-dir:
// the first process-equivalent writes a base snapshot, the second revives
// it from disk (visible in -cache-stats as a disk hit and zero misses).
func TestCmdSolveCacheDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-require", "congestion_control", "-cache-dir", dir, "-cache-stats"}
	cold := capture(t, func() error { return cmdSolve(args, "synth") })
	if !strings.Contains(cold, "FEASIBLE") || !strings.Contains(cold, "1 misses") {
		t.Errorf("cold run should compile once:\n%s", cold)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.nabase"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no snapshot files written to -cache-dir (err %v)", err)
	}
	warm := capture(t, func() error { return cmdSolve(args, "synth") })
	if !strings.Contains(warm, "FEASIBLE") {
		t.Errorf("disk-warm run failed:\n%s", warm)
	}
	if !strings.Contains(warm, "disk: 1 hits") || !strings.Contains(warm, "0 misses") {
		t.Errorf("disk-warm run should revive the base without compiling:\n%s", warm)
	}
	// A corrupted snapshot must not change the answer, only the counters.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := capture(t, func() error { return cmdSolve(args, "synth") })
	if !strings.Contains(corrupt, "FEASIBLE") || !strings.Contains(corrupt, "1 corrupt") {
		t.Errorf("corrupt snapshot should recompile and count:\n%s", corrupt)
	}
}

// Command netarch is the CLI for the lightweight network-architecture
// reasoning framework: query the knowledge compendium, synthesize and
// check designs, optimize under lexicographic objectives, explain
// infeasibility, inspect the catalog, extract hardware encodings from
// spec sheets, export Figure 1-style orderings, analyse PFC safety, and
// regenerate every experiment of the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"netarch"
	"netarch/internal/dsl"
	"netarch/internal/experiments"
	"netarch/internal/extract"
	"netarch/internal/kb"
	"netarch/internal/logic"
	"netarch/internal/order"
	"netarch/internal/report"
	"netarch/internal/topo"
)

const usage = `netarch - lightweight automated reasoning for network architectures

Usage:
  netarch experiments [id]          regenerate paper experiments (all or one)
  netarch synth [flags]             synthesize a compliant design
  netarch check -systems a,b [...]  check a concrete design
  netarch optimize [flags]          lexicographic optimization
  netarch explain [flags]           explain why no design exists
  netarch suggest [flags]           propose minimal requirement relaxations
  netarch disambiguate [flags]      report where the solution space forks
  netarch multi [flags]             run repeated queries on one engine
                                    (shows compiled-base cache amortization)
  netarch serve [flags]             long-lived HTTP/JSON query service with
                                    admission control and graceful drain
  netarch reload [flags] <kb|->     push a new knowledge base to a running
                                    serve instance (zero-downtime live update)
  netarch catalog [stats|systems|hardware|export|export-dsl]
  netarch kb <validate|to-json|to-dsl> <file|->
  netarch kb diff <old> <new>       compare two knowledge-base files
  netarch extract <specfile|->      extract a hardware encoding from a spec sheet
  netarch viz <dimension>           emit a Figure 1-style ordering as Graphviz DOT
  netarch pfc [flags]               PFC buffer-dependency deadlock analysis

Common synth/optimize/explain flags:
  -require p1,p2      required properties
  -context k=v,...    pinned context atoms (v in {true,false})
  -workloads w1,w2    workloads to support (default: all in the KB)
  -pin s1,s2          systems that must be deployed
  -forbid s1,s2       systems that must not be deployed
  -servers N          fleet size (default 48)
  -maxcost N          hardware budget in USD
  -objectives list    (optimize) comma list: cost,cores,systems,power,
                      ports,latency,order:<dim> — earlier entries dominate
  -strategy S         (optimize) MaxSAT descent: binary (default, tight
                      bounds under budget trips) or linear (SAT-UNSAT)
  -pareto             (optimize) enumerate the full non-dominated frontier
                      over the objectives instead of one lexicographic
                      optimum

Resource-governance flags (synth/check/optimize/explain/suggest/disambiguate):
  -timeout D          wall-clock deadline for the query (e.g. 500ms, 2s)
  -max-conflicts N    solver conflict budget per phase (0 = unlimited)
  -max-decisions N    solver decision budget per phase (0 = unlimited)
  -workers N          solver clones enumerating design classes in parallel
                      (disambiguate/multi; 0 = one per CPU; results are
                      identical whatever the worker count)
  -portfolio N        race N diversified solvers per decision query
                      (synth/check/explain/multi; <=1 = off; verdicts are
                      identical whatever the width)
  -slice MODE         relevance-sliced compilation: on, off, or auto
                      (default auto: slice only when the catalog is large;
                      answers are identical whatever the mode)

Cache flags:
  -cache-dir DIR      persist compiled bases to DIR and revive them on
                      startup, so even a fresh process skips the first
                      compile (corrupt/stale files recompile silently)
  -cache-stats        print compiled-base cache stats after the queries,
                      including disk hit/miss/evict/corrupt counters
  -rounds N           (multi) rounds of synth+explain+optimize (default 3)

Serve flags (netarch serve; scenario flags set the prewarm shape, budget
flags set the server-side policy ceiling clients may only tighten):
  -addr HOST:PORT     listen address (default 127.0.0.1:8080, :0 = random)
  -max-inflight N     concurrently executing queries (0 = one per CPU)
  -queue-depth N      admission queue length (0 = 2x max-inflight); beyond
                      it requests shed with 429 + Retry-After
  -drain-timeout D    graceful-drain deadline on SIGINT/SIGTERM
  -clone-pool N       pre-cloned solvers per base (0 = max-inflight)
  -portfolio N        diversified solver race width per decision query
  -slice MODE         relevance-sliced compilation: on, off, or auto
  -chaos SPEC         fault injection: seed=N,rate=F[,event=solve|conflict|both]
  -kb FILE            serve this knowledge base instead of the case study
  -retry-after D      backoff hint on 429/503 (header rounds up to >= 1s)

Reload flags (netarch reload [-addr host:port] <kbfile|->):
  -addr HOST:PORT     the running serve instance (default 127.0.0.1:8080)
  -timeout D          request deadline, covering the server-side recompiles

Profiling flags (before the command: netarch -cpuprofile=cpu.out synth ...):
  -cpuprofile FILE    write a pprof CPU profile for the whole run to FILE
  -memprofile FILE    write a pprof heap profile on exit to FILE

Exit codes: 0 success, 1 error, 2 usage, 4 resource budget exhausted
before a verdict. Degraded-but-useful answers (approximate explanations,
truncated enumerations) exit 0 and are labelled in the output.
`

func main() {
	os.Exit(run())
}

// run dispatches the subcommand and returns the process exit code. It
// exists so the deferred profile writers fire on every path — os.Exit
// in main would skip them.
func run() int {
	global := flag.NewFlagSet("netarch", flag.ContinueOnError)
	global.Usage = func() { fmt.Fprint(os.Stderr, usage) }
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile for the whole run to this file")
	memProfile := global.String("memprofile", "", "write a heap profile on exit to this file")
	if err := global.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	args := global.Args()
	if len(args) < 1 {
		fmt.Fprint(os.Stderr, usage)
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netarch: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "netarch: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netarch: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // collect dead objects so the profile shows live heap
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "netarch: -memprofile: %v\n", err)
			}
		}()
	}

	var err error
	switch args[0] {
	case "experiments":
		err = cmdExperiments(args[1:])
	case "synth":
		err = cmdSolve(args[1:], "synth")
	case "check":
		err = cmdCheck(args[1:])
	case "optimize":
		err = cmdSolve(args[1:], "optimize")
	case "explain":
		err = cmdSolve(args[1:], "explain")
	case "suggest":
		err = cmdSolve(args[1:], "suggest")
	case "disambiguate":
		err = cmdSolve(args[1:], "disambiguate")
	case "multi":
		err = cmdMulti(args[1:])
	case "serve":
		err = cmdServe(args[1:])
	case "reload":
		err = cmdReload(args[1:])
	case "catalog":
		err = cmdCatalog(args[1:])
	case "kb":
		err = cmdKB(args[1:])
	case "extract":
		err = cmdExtract(args[1:])
	case "viz":
		err = cmdViz(args[1:])
	case "pfc":
		err = cmdPFC(args[1:])
	case "help":
		fmt.Print(usage)
	default:
		fmt.Fprintf(os.Stderr, "netarch: unknown command %q\n\n%s", args[0], usage)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netarch: %v\n", err)
		if netarch.IsResourceExhausted(err) {
			return 4
		}
		return 1
	}
	return 0
}

func cmdExperiments(args []string) error {
	if len(args) > 0 {
		for _, r := range experiments.All() {
			if strings.EqualFold(r.ID, args[0]) {
				res, err := r.Run()
				if err != nil {
					return err
				}
				fmt.Println(res)
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q", args[0])
	}
	results, err := experiments.RunAll()
	if err != nil {
		return err
	}
	pass := 0
	for _, res := range results {
		fmt.Println(res)
		if res.Pass {
			pass++
		}
	}
	fmt.Printf("== summary: %d/%d experiments match the paper's shape\n", pass, len(results))
	return nil
}

// scenarioFlags registers the common scenario flags on fs.
func scenarioFlags(fs *flag.FlagSet) (get func() (netarch.Scenario, error), objectives *string) {
	require := fs.String("require", "", "comma list of required properties")
	context := fs.String("context", "", "comma list of atom=bool context pins")
	workloads := fs.String("workloads", "", "comma list of workloads")
	pin := fs.String("pin", "", "comma list of pinned systems")
	forbid := fs.String("forbid", "", "comma list of forbidden systems")
	servers := fs.Int("servers", 0, "fleet size (servers)")
	maxCost := fs.Int64("maxcost", 0, "hardware budget USD (0 = unlimited)")
	pinServer := fs.String("pin-server", "", "pin the server SKU")
	pinSwitch := fs.String("pin-switch", "", "pin the switch SKU")
	pinNIC := fs.String("pin-nic", "", "pin the NIC SKU")
	objectives = fs.String("objectives", "cost", "objectives: cost,cores,systems,order:<dim>")
	_ = fs.Bool("md", false, "emit a Markdown report instead of plain text")

	get = func() (netarch.Scenario, error) {
		sc := netarch.Scenario{
			NumServers: *servers,
			MaxCostUSD: *maxCost,
		}
		for _, p := range splitList(*require) {
			sc.Require = append(sc.Require, netarch.Property(p))
		}
		sc.Workloads = splitList(*workloads)
		sc.PinnedSystems = splitList(*pin)
		sc.ForbiddenSystems = splitList(*forbid)
		if *context != "" {
			sc.Context = map[string]bool{}
			for _, kv := range splitList(*context) {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return sc, fmt.Errorf("bad context pin %q (want atom=true|false)", kv)
				}
				switch parts[1] {
				case "true":
					sc.Context[parts[0]] = true
				case "false":
					sc.Context[parts[0]] = false
				default:
					return sc, fmt.Errorf("bad context value %q", parts[1])
				}
			}
		}
		hwPins := map[netarch.HardwareKind]string{}
		if *pinServer != "" {
			hwPins[netarch.KindServer] = *pinServer
		}
		if *pinSwitch != "" {
			hwPins[netarch.KindSwitch] = *pinSwitch
		}
		if *pinNIC != "" {
			hwPins[netarch.KindNIC] = *pinNIC
		}
		if len(hwPins) > 0 {
			sc.PinnedHardware = hwPins
		}
		return sc, nil
	}
	return get, objectives
}

// budgetFlags registers the resource-governance flags on fs. Kept
// separate from scenarioFlags: the scenario describes the question, the
// budget bounds the effort spent answering it.
func budgetFlags(fs *flag.FlagSet) (get func() netarch.Budget) {
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the query (0 = none)")
	maxConflicts := fs.Int64("max-conflicts", 0, "solver conflict budget per phase (0 = unlimited)")
	maxDecisions := fs.Int64("max-decisions", 0, "solver decision budget per phase (0 = unlimited)")
	return func() netarch.Budget {
		return netarch.Budget{
			Timeout:      *timeout,
			MaxConflicts: *maxConflicts,
			MaxDecisions: *maxDecisions,
		}
	}
}

// workersFlag registers -workers and returns an applier that sizes the
// engine's enumeration pool. The determinism contract (DESIGN.md §8)
// makes the flag a pure latency knob: output never depends on it.
func workersFlag(fs *flag.FlagSet) (apply func(eng *netarch.Engine)) {
	workers := fs.Int("workers", 0, "parallel enumeration workers (0 = one per CPU)")
	return func(eng *netarch.Engine) { eng.SetWorkers(*workers) }
}

// portfolioFlag registers -portfolio and returns an applier that sets
// the engine's diversified solver-race width for decision queries (see
// Engine.SetPortfolio). Like -workers it is a pure latency knob:
// verdicts, designs, and explanations do not depend on it for any
// value > 1 (DESIGN.md §13).
func portfolioFlag(fs *flag.FlagSet) (apply func(eng *netarch.Engine)) {
	n := fs.Int("portfolio", 0, "diversified solver race width for decision queries (<=1 = off)")
	return func(eng *netarch.Engine) { eng.SetPortfolio(*n) }
}

// sliceFlag registers -slice and returns an applier that sets the
// engine's relevance-slicing policy (see Engine.SetSliceMode). Like
// -workers and -portfolio it is a pure latency knob: verdicts, optima,
// explanations, and Pareto frontiers do not depend on it (DESIGN.md
// §16); "auto" slices only when the catalog is large enough to pay.
func sliceFlag(fs *flag.FlagSet) (apply func(eng *netarch.Engine) error) {
	mode := fs.String("slice", "auto", "relevance-sliced compilation: on, off, or auto")
	return func(eng *netarch.Engine) error {
		m, err := netarch.ParseSliceMode(*mode)
		if err != nil {
			return err
		}
		eng.SetSliceMode(m)
		return nil
	}
}

// cacheDirFlag registers -cache-dir and returns an applier that turns on
// the engine's persistent compiled-base cache (see Engine.SetCacheDir).
func cacheDirFlag(fs *flag.FlagSet) (apply func(eng *netarch.Engine) error) {
	dir := fs.String("cache-dir", "", "directory for persistent compiled-base snapshots (empty = off)")
	return func(eng *netarch.Engine) error {
		if *dir == "" {
			return nil
		}
		return eng.SetCacheDir(*dir)
	}
}

// queryContext returns a context canceled by SIGINT/SIGTERM, so an
// interrupted one-shot query stops at the next solver boundary and
// surfaces as a typed resource-exhaustion error ("canceled"): partial
// results already computed are still printed and the process exits 4,
// the same path a tripped budget takes.
func queryContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cmdSolve(args []string, mode string) error {
	fs := flag.NewFlagSet(mode, flag.ContinueOnError)
	getScenario, objectives := scenarioFlags(fs)
	getBudget := budgetFlags(fs)
	setWorkers := workersFlag(fs)
	setPortfolio := portfolioFlag(fs)
	setSlice := sliceFlag(fs)
	setCacheDir := cacheDirFlag(fs)
	cacheStats := fs.Bool("cache-stats", false, "print compiled-base cache stats after the query")
	strategy := fs.String("strategy", "", "MaxSAT descent strategy: binary (default) or linear")
	pareto := fs.Bool("pareto", false, "enumerate the Pareto frontier instead of one lexicographic optimum")
	if err := fs.Parse(args); err != nil {
		return err
	}
	asMarkdown := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "md" && f.Value.String() == "true" {
			asMarkdown = true
		}
	})
	sc, err := getScenario()
	if err != nil {
		return err
	}
	budget := getBudget()
	ctx, stopSignals := queryContext()
	defer stopSignals()
	k := netarch.CaseStudy()
	eng, err := netarch.NewEngine(k)
	if err != nil {
		return err
	}
	setWorkers(eng)
	setPortfolio(eng)
	if err := setSlice(eng); err != nil {
		return err
	}
	if err := setCacheDir(eng); err != nil {
		return err
	}
	switch mode {
	case "synth":
		rep, err := eng.SynthesizeCtx(ctx, sc, budget)
		if err != nil {
			return err
		}
		if asMarkdown {
			fmt.Print(report.Render(k, sc, rep, report.Options{ShowNotes: true}))
			if rep.Verdict == netarch.Infeasible {
				sugs, err := eng.SuggestCtx(ctx, sc, 3, budget)
				if err != nil {
					return err
				}
				fmt.Print(report.RenderSuggestions(sugs))
			}
			return nil
		}
		printReport(rep)
	case "explain":
		ex, err := eng.ExplainCtx(ctx, sc, budget)
		if err != nil {
			return err
		}
		if ex == nil {
			fmt.Println("FEASIBLE: nothing to explain")
		} else {
			fmt.Print(ex.String())
		}
	case "suggest":
		sugs, err := eng.SuggestCtx(ctx, sc, 5, budget)
		if err != nil {
			// Partial suggestions on a tripped budget are still worth
			// printing; the non-zero exit still reports the exhaustion.
			for i, s := range sugs {
				fmt.Printf("option %d:\n%s", i+1, s)
			}
			return err
		}
		if sugs == nil {
			fmt.Println("FEASIBLE: nothing to relax")
			return nil
		}
		for i, s := range sugs {
			fmt.Printf("option %d:\n%s", i+1, s)
		}
	case "disambiguate":
		d, err := eng.DisambiguateCtx(ctx, sc, 16, budget)
		if err != nil {
			return err
		}
		fmt.Print(d.String())
	case "optimize":
		objs, err := parseObjectives(*objectives)
		if err != nil {
			return err
		}
		strat, err := netarch.ParseOptimizeStrategy(*strategy)
		if err != nil {
			return err
		}
		if *pareto {
			res, err := eng.ParetoWithStrategyCtx(ctx, sc, objs, budget, strat)
			if err != nil {
				return err
			}
			printPareto(res, objs)
		} else {
			res, err := eng.OptimizeWithStrategyCtx(ctx, sc, objs, budget, strat)
			if err != nil {
				return err
			}
			printReport(&res.Report)
			if res.Verdict == netarch.Feasible {
				for i, v := range res.ObjectiveValues {
					if res.LowerBounds[i] == v {
						fmt.Printf("objective[%d] %s = %d (certified)\n", i, objs[i].Kind, v)
					} else {
						fmt.Printf("objective[%d] %s in [%d, %d]\n",
							i, objs[i].Kind, res.LowerBounds[i], v)
					}
				}
				if res.Approximate {
					fmt.Printf("approximate: optimization stopped on %s\n", res.ApproxCause)
				}
			}
		}
	}
	if *cacheStats {
		fmt.Printf("cache: %s\n", eng.CacheStats())
	}
	return nil
}

// cmdMulti runs repeated rounds of synth + explain + optimize on one
// engine over the same scenario, timing each query. The first round pays
// compilation; later rounds are served from the compiled-base cache, so
// the printed timings make the amortization visible.
func cmdMulti(args []string) error {
	fs := flag.NewFlagSet("multi", flag.ContinueOnError)
	getScenario, objectives := scenarioFlags(fs)
	getBudget := budgetFlags(fs)
	setWorkers := workersFlag(fs)
	setPortfolio := portfolioFlag(fs)
	setSlice := sliceFlag(fs)
	setCacheDir := cacheDirFlag(fs)
	rounds := fs.Int("rounds", 3, "rounds of synth+explain+optimize to run")
	cacheStats := fs.Bool("cache-stats", true, "print compiled-base cache stats after the queries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := getScenario()
	if err != nil {
		return err
	}
	objs, err := parseObjectives(*objectives)
	if err != nil {
		return err
	}
	budget := getBudget()
	ctx, stopSignals := queryContext()
	defer stopSignals()
	eng, err := netarch.NewEngine(netarch.CaseStudy())
	if err != nil {
		return err
	}
	setWorkers(eng)
	setPortfolio(eng)
	if err := setSlice(eng); err != nil {
		return err
	}
	if err := setCacheDir(eng); err != nil {
		return err
	}
	for r := 1; r <= *rounds; r++ {
		start := time.Now()
		rep, err := eng.SynthesizeCtx(ctx, sc, budget)
		if err != nil {
			return err
		}
		synthDur := time.Since(start)
		start = time.Now()
		if _, err := eng.ExplainCtx(ctx, sc, budget); err != nil {
			return err
		}
		explainDur := time.Since(start)
		start = time.Now()
		if _, err := eng.OptimizeCtx(ctx, sc, objs, budget); err != nil {
			return err
		}
		optDur := time.Since(start)
		fmt.Printf("round %d: %s  synth %s  explain %s  optimize %s\n",
			r, rep.Verdict,
			synthDur.Round(time.Microsecond),
			explainDur.Round(time.Microsecond),
			optDur.Round(time.Microsecond))
	}
	if *cacheStats {
		fmt.Printf("cache: %s\n", eng.CacheStats())
	}
	return nil
}

func parseObjectives(s string) ([]netarch.Objective, error) {
	var out []netarch.Objective
	for _, o := range splitList(s) {
		obj, err := netarch.ParseObjective(o)
		if err != nil {
			return nil, err
		}
		out = append(out, obj)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no objectives given")
	}
	return out, nil
}

// printPareto renders a frontier: one line per non-dominated point with
// its objective vector and witness, then the completeness verdict.
func printPareto(res *netarch.ParetoResult, objs []netarch.Objective) {
	if len(res.Points) == 0 && res.Complete {
		fmt.Println("INFEASIBLE: empty frontier")
		return
	}
	var names []string
	for _, o := range objs {
		if o.Dimension != "" {
			names = append(names, fmt.Sprintf("%s:%s", o.Kind, o.Dimension))
		} else {
			names = append(names, fmt.Sprint(o.Kind))
		}
	}
	fmt.Printf("frontier over (%s): %d points\n", strings.Join(names, ", "), len(res.Points))
	for i, p := range res.Points {
		vals := make([]string, len(p.Values))
		for j, v := range p.Values {
			vals[j] = fmt.Sprintf("%s=%d", names[j], v)
		}
		fmt.Printf("point %d: %s\n", i+1, strings.Join(vals, " "))
		d := p.Design
		fmt.Printf("  systems: %s\n", strings.Join(d.Systems, " "))
		fmt.Printf("  hw:      %s / %s / %s\n",
			d.Hardware[netarch.KindSwitch], d.Hardware[netarch.KindNIC],
			d.Hardware[netarch.KindServer])
	}
	if res.Complete {
		fmt.Println("complete: the frontier is provably the whole non-dominated set")
	} else {
		fmt.Printf("partial: stopped on %s; unexplored regions may add or dominate points\n",
			res.Exhausted.Cause)
	}
	fmt.Printf("spent:    %d conflicts, %d decisions, %s\n",
		res.Spent.Conflicts, res.Spent.Decisions, res.Spent.Wall.Round(time.Microsecond))
}

func printReport(rep *netarch.Report) {
	fmt.Println(rep.Verdict)
	if rep.Verdict == netarch.Feasible {
		d := rep.Design
		fmt.Printf("systems:  %s\n", strings.Join(d.Systems, " "))
		fmt.Printf("switch:   %s\n", d.Hardware[netarch.KindSwitch])
		fmt.Printf("nic:      %s\n", d.Hardware[netarch.KindNIC])
		fmt.Printf("server:   %s\n", d.Hardware[netarch.KindServer])
		fmt.Printf("cores:    %d/%d\n", d.Metrics["cores_used"], d.Metrics["cores_total"])
		fmt.Printf("cost:     $%d\n", d.Metrics["cost_usd"])
	} else {
		fmt.Print(rep.Explanation.String())
	}
	fmt.Printf("spent:    %d conflicts, %d decisions, %s\n",
		rep.Spent.Conflicts, rep.Spent.Decisions, rep.Spent.Wall.Round(time.Microsecond))
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	systems := fs.String("systems", "", "comma list of deployed systems")
	swName := fs.String("switch", "", "selected switch SKU")
	nicName := fs.String("nic", "", "selected NIC SKU")
	srvName := fs.String("server", "", "selected server SKU")
	getScenario, _ := scenarioFlags(fs)
	getBudget := budgetFlags(fs)
	setPortfolio := portfolioFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := getScenario()
	if err != nil {
		return err
	}
	d := netarch.Design{
		Systems:  splitList(*systems),
		Hardware: map[netarch.HardwareKind]string{},
	}
	if *swName != "" {
		d.Hardware[netarch.KindSwitch] = *swName
	}
	if *nicName != "" {
		d.Hardware[netarch.KindNIC] = *nicName
	}
	if *srvName != "" {
		d.Hardware[netarch.KindServer] = *srvName
	}
	eng, err := netarch.NewEngine(netarch.CaseStudy())
	if err != nil {
		return err
	}
	setPortfolio(eng)
	ctx, stopSignals := queryContext()
	defer stopSignals()
	rep, err := eng.CheckCtx(ctx, d, sc, getBudget())
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

func cmdCatalog(args []string) error {
	sub := "stats"
	if len(args) > 0 {
		sub = args[0]
	}
	k := netarch.DefaultCatalog()
	switch sub {
	case "stats":
		st := k.ComputeStats()
		fmt.Printf("systems:     %d\n", st.Systems)
		fmt.Printf("hardware:    %d\n", st.Hardware)
		fmt.Printf("rules:       %d\n", st.Rules)
		fmt.Printf("order edges: %d\n", st.OrderEdges)
		fmt.Printf("spec size:   %d facts\n", st.SpecSize)
		for _, role := range kb.Roles() {
			fmt.Printf("  %-20s %d systems\n", role, len(k.SystemsByRole(role)))
		}
	case "systems":
		for _, role := range kb.Roles() {
			fmt.Printf("%s:\n", role)
			for _, s := range k.SystemsByRole(role) {
				fmt.Printf("  %-20s solves=%v maturity=%s\n", s.Name, s.Solves, s.Maturity)
			}
		}
	case "hardware":
		byKind := map[netarch.HardwareKind][]string{}
		for i := range k.Hardware {
			h := &k.Hardware[i]
			byKind[h.Kind] = append(byKind[h.Kind], h.Name)
		}
		for _, kind := range []netarch.HardwareKind{netarch.KindSwitch, netarch.KindNIC, netarch.KindServer} {
			names := byKind[kind]
			sort.Strings(names)
			fmt.Printf("%s (%d):\n", kind, len(names))
			for _, n := range names {
				fmt.Printf("  %s\n", n)
			}
		}
	case "export":
		return k.Save(os.Stdout)
	case "export-dsl":
		_, err := fmt.Print(dsl.Format(k))
		return err
	default:
		return fmt.Errorf("unknown catalog subcommand %q", sub)
	}
	return nil
}

// cmdKB validates or converts user-authored knowledge-base files in
// either JSON or DSL format — the crowd-sourcing workflow of §3.3.
func cmdKB(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: netarch kb <validate|to-json|to-dsl|diff> <file...>")
	}
	if args[0] == "diff" {
		if len(args) < 3 {
			return fmt.Errorf("usage: netarch kb diff <old> <new>")
		}
		oldData, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		newData, err := os.ReadFile(args[2])
		if err != nil {
			return err
		}
		oldKB, err := loadAnyKB(oldData)
		if err != nil {
			return fmt.Errorf("%s: %w", args[1], err)
		}
		newKB, err := loadAnyKB(newData)
		if err != nil {
			return fmt.Errorf("%s: %w", args[2], err)
		}
		fmt.Print(kb.FormatDiff(kb.Diff(oldKB, newKB)))
		return nil
	}
	sub, path := args[0], args[1]
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	k, err := loadAnyKB(data)
	if err != nil {
		return err
	}
	switch sub {
	case "validate":
		st := k.ComputeStats()
		fmt.Printf("valid: %d systems, %d hardware, %d workloads, %d rules, %d order edges\n",
			st.Systems, st.Hardware, st.Workloads, st.Rules, st.OrderEdges)
		return nil
	case "to-json":
		return k.Save(os.Stdout)
	case "to-dsl":
		_, err := fmt.Print(dsl.Format(k))
		return err
	default:
		return fmt.Errorf("unknown kb subcommand %q", sub)
	}
}

// loadAnyKB sniffs JSON vs DSL.
func loadAnyKB(data []byte) (*netarch.KB, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return kb.Load(strings.NewReader(trimmed))
	}
	return dsl.ParseString(trimmed)
}

func cmdExtract(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: netarch extract <specfile|->")
	}
	var text []byte
	var err error
	if args[0] == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}
	llm := extract.NewSimulatedLLM(1)
	h, err := llm.ExtractHardware(string(text))
	if err != nil {
		return err
	}
	out := &netarch.KB{Hardware: []netarch.Hardware{h}}
	return out.Save(os.Stdout)
}

func cmdViz(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: netarch viz <dimension> (e.g. throughput, isolation)")
	}
	k := netarch.DefaultCatalog()
	spec := k.OrderByDimension(args[0])
	if spec == nil {
		var dims []string
		for _, o := range k.Orders {
			dims = append(dims, o.Dimension)
		}
		return fmt.Errorf("unknown dimension %q (have: %s)", args[0], strings.Join(dims, ", "))
	}
	vo := logic.NewVocabulary()
	g := order.New(spec.Dimension)
	for _, e := range spec.Edges {
		guard := logic.True
		if e.Guard != nil {
			var err error
			guard, err = e.Guard.Compile(vo.Get)
			if err != nil {
				return err
			}
		}
		if err := g.AddEdge(e.Better, e.Worse, guard, e.Note); err != nil {
			return err
		}
	}
	for _, e := range spec.Equals {
		guard := logic.True
		if e.Guard != nil {
			var err error
			guard, err = e.Guard.Compile(vo.Get)
			if err != nil {
				return err
			}
		}
		if err := g.AddEqual(e.A, e.B, guard, e.Note); err != nil {
			return err
		}
	}
	color := map[string]string{
		"throughput": "gold3", "isolation": "red3", "app_modification": "blue3",
	}[spec.Dimension]
	fmt.Print(g.DOT(vo, color))
	return nil
}

func cmdPFC(args []string) error {
	fs := flag.NewFlagSet("pfc", flag.ContinueOnError)
	shape := fs.String("topo", "leafspine:2x2", "topology: leafspine:SxL or fattree:K")
	flooding := fs.Bool("flooding", false, "enable L2 flooding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		t   *topo.Topology
		err error
	)
	switch {
	case strings.HasPrefix(*shape, "leafspine:"):
		var s, l int
		if _, err := fmt.Sscanf(*shape, "leafspine:%dx%d", &s, &l); err != nil {
			return fmt.Errorf("bad leafspine shape %q", *shape)
		}
		t, err = topo.NewLeafSpine(s, l, 4, 64)
	case strings.HasPrefix(*shape, "fattree:"):
		var karg int
		if _, err := fmt.Sscanf(*shape, "fattree:%d", &karg); err != nil {
			return fmt.Errorf("bad fattree shape %q", *shape)
		}
		t, err = topo.NewFatTree(karg, 64)
	default:
		return fmt.Errorf("unknown topology %q", *shape)
	}
	if err != nil {
		return err
	}
	rep := t.PFCDeadlockCheck(*flooding)
	fmt.Println(rep)
	if rep.Deadlock {
		fmt.Println("rule check: the knowledge base forbids this (rule pfc_no_flooding)")
	}
	return nil
}

package main

import (
	"flag"
	"strings"
	"testing"
	"time"

	"netarch"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a, b ,c", []string{"a", "b", "c"}},
		{" , ,", nil},
	}
	for _, c := range cases {
		got := splitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("%q: got %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q: got %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := parseObjectives("cost,cores,systems,order:tail_latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("got %d objectives", len(objs))
	}
	if objs[0].Kind != netarch.MinimizeCost || objs[3].Kind != netarch.PreferOrder ||
		objs[3].Dimension != "tail_latency" {
		t.Errorf("objectives wrong: %+v", objs)
	}
	if _, err := parseObjectives("bogus"); err == nil {
		t.Error("unknown objective must error")
	}
	if _, err := parseObjectives(""); err == nil {
		t.Error("empty objective list must error")
	}
}

func TestScenarioFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	get, _ := scenarioFlags(fs)
	err := fs.Parse([]string{
		"-require", "congestion_control,load_balancing",
		"-context", "deadline_tight=true,wan_dc_mix=false",
		"-pin", "sonata",
		"-forbid", "cubic",
		"-servers", "96",
		"-maxcost", "500000",
		"-pin-server", "Dellora R-64c",
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := get()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Require) != 2 || sc.Require[0] != "congestion_control" {
		t.Errorf("require wrong: %v", sc.Require)
	}
	if v, ok := sc.Context["deadline_tight"]; !ok || !v {
		t.Errorf("context wrong: %v", sc.Context)
	}
	if v, ok := sc.Context["wan_dc_mix"]; !ok || v {
		t.Errorf("context wrong: %v", sc.Context)
	}
	if sc.NumServers != 96 || sc.MaxCostUSD != 500000 {
		t.Errorf("numbers wrong: %+v", sc)
	}
	if sc.PinnedHardware[netarch.KindServer] != "Dellora R-64c" {
		t.Errorf("hardware pin wrong: %v", sc.PinnedHardware)
	}
}

func TestScenarioFlagsBadContext(t *testing.T) {
	for _, bad := range []string{"novalue", "atom=maybe"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		get, _ := scenarioFlags(fs)
		if err := fs.Parse([]string{"-context", bad}); err != nil {
			t.Fatal(err)
		}
		if _, err := get(); err == nil {
			t.Errorf("context %q must error", bad)
		}
	}
}

func TestBudgetFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	get := budgetFlags(fs)
	if err := fs.Parse([]string{"-timeout", "1500ms", "-max-conflicts", "42", "-max-decisions", "7"}); err != nil {
		t.Fatal(err)
	}
	b := get()
	if b.Timeout != 1500*time.Millisecond || b.MaxConflicts != 42 || b.MaxDecisions != 7 {
		t.Errorf("budget wrong: %+v", b)
	}

	// Defaults: the zero budget (unbounded).
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	get2 := budgetFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if b := get2(); b != (netarch.Budget{}) {
		t.Errorf("default budget not zero: %+v", b)
	}
}

func TestCmdSolveWithBudgetFlags(t *testing.T) {
	// A generous budget must not change the verdict, and the report must
	// account for what was spent.
	out := capture(t, func() error {
		return cmdSolve([]string{"-require", "congestion_control", "-timeout", "1m", "-max-conflicts", "100000"}, "synth")
	})
	if !strings.Contains(out, "FEASIBLE") || !strings.Contains(out, "spent:") {
		t.Errorf("budgeted synth output wrong:\n%s", out)
	}
}

func TestLoadAnyKB(t *testing.T) {
	jsonKB := `{"systems":[{"name":"x","role":"monitoring"}]}`
	k, err := loadAnyKB([]byte(jsonKB))
	if err != nil {
		t.Fatal(err)
	}
	if k.SystemByName("x") == nil {
		t.Error("JSON KB not loaded")
	}
	dslKB := "system y {\n    role: monitoring\n}\n"
	k, err = loadAnyKB([]byte(dslKB))
	if err != nil {
		t.Fatal(err)
	}
	if k.SystemByName("y") == nil {
		t.Error("DSL KB not loaded")
	}
	if _, err := loadAnyKB([]byte("not a kb at all")); err == nil {
		t.Error("garbage must error")
	}
	if !strings.Contains(dslKB, "system") {
		t.Error("sanity")
	}
}
